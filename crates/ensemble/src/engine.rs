//! The two-layer inference engine: an immutable, shareable [`EnginePlan`]
//! and cheap per-worker [`EngineSession`]s.
//!
//! Serving an ensemble means paying the "combine many members per query"
//! cost on every request — and a server only scales past one worker if
//! additional workers do **not** mean additional copies of every member's
//! weights. The engine therefore splits into two layers:
//!
//! * [`EnginePlan`] — everything immutable: the members (weights), input
//!   geometry, mini-batch size, default execution policy, the planning
//!   logic ([`EnginePlan::resolve`]), and artifact load/save. A plan is
//!   wrapped in an [`Arc`] and shared by every worker; eval-mode forward
//!   passes read it through `&self` only (see
//!   [`mn_nn::Network::forward_eval_with`]), so N workers execute **one**
//!   copy of the ensemble concurrently.
//! * [`EngineSession`] — everything mutable and per-worker: workspaces
//!   (activations, im2col scratch, GEMM packing buffers), replica-lane
//!   scratch for data-parallel plans, and staging buffers. Sessions are
//!   cheap — a handful of empty buffer pools — so a server spins up one
//!   per shard without cloning a single weight.
//!
//! [`InferenceEngine`] remains as a thin compatibility facade: one plan
//! plus one session, with the same API surface earlier PRs exposed, so
//! existing call sites keep working during migration.
//!
//! ## Execution plans
//!
//! Each request batch resolves to a plan along one of three parallelism
//! axes:
//!
//! * **Member-parallel** ([`Plan::MemberParallel`]) — each member runs the
//!   whole batch on its own worker slot (shared member + private
//!   [`Workspace`]), fanned across rayon worker threads. The right axis
//!   when the member count already saturates the machine, and for small
//!   batches.
//! * **Data-parallel** ([`Plan::DataParallel`]) — the batch is split into
//!   contiguous shards ([`mn_tensor::chunking::shard_ranges`]); each shard
//!   runs on its own *replica lane* (a per-member set of workspaces — the
//!   weights stay shared), and per-member outputs are stitched back in
//!   example order. Lanes are materialized lazily, so a session that
//!   never runs a data-parallel plan never pays the extra scratch.
//! * **Trunk-shared** ([`Plan::TrunkShared`]) — members hatched from one
//!   MotherNet share a common prefix of bitwise-identical layers (the
//!   paper's hatching step). The plan detects that prefix at build time
//!   ([`EnginePlan::trunk_len`]), evaluates it **once** per mini-batch
//!   chunk, and fans only the divergent tails across members — roughly
//!   `1/K` of the trunk FLOPs for a `K`-member ensemble with a deep
//!   trunk. Shards compose with this axis exactly as in data-parallel.
//!
//! [`ExecPolicy::Auto`] (the default) prefers the trunk-shared axis
//! whenever the detected trunk contains parameterized work, and otherwise
//! picks between the flat axes per batch from batch size × member count ×
//! worker-thread count; [`EnginePlan::resolve`] exposes the decision for
//! inspection and tests.
//!
//! ## Determinism
//!
//! Output is bitwise identical across execution plans, shard counts,
//! session counts, thread counts, and the old-vs-new API: every tensor
//! kernel partitions work over disjoint output regions with a fixed
//! per-element accumulation order, and each example's forward pass is
//! independent of its batch neighbors. The `engine_determinism`
//! integration suite pins this property.
//!
//! ## Cold start
//!
//! [`EnginePlan::load`] boots a plan straight from an `MNE1` ensemble
//! artifact on disk (see [`crate::artifact`]) — no retraining, zero-init
//! construction (weights are restored, never sampled), and
//! bitwise-identical predictions to the ensemble that saved it.
//!
//! ## Example
//!
//! ```
//! use mn_ensemble::engine::EnginePlan;
//! use mn_ensemble::EnsembleMember;
//! use mn_nn::arch::{Architecture, InputSpec};
//! use mn_nn::Network;
//! use mn_tensor::Tensor;
//!
//! let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![4]);
//! let members: Vec<EnsembleMember> = (0..4)
//!     .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
//!     .collect();
//! let plan = EnginePlan::new(members, 32).unwrap().into_shared();
//! // Two sessions over one plan: no weight clones, independent scratch.
//! let mut a = plan.session();
//! let mut b = plan.session();
//! let x = Tensor::zeros([5, 1, 2, 2]);
//! assert_eq!(a.predict_labels(&x), b.predict_labels(&x));
//! ```

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use mn_nn::arch::InputSpec;
use mn_tensor::chunking::shard_ranges;
use mn_tensor::{ops, Tensor, Workspace};

use rayon::prelude::*;

use crate::artifact::{self, ArtifactError, EnsembleManifest};
use crate::combine;
use crate::member::{EnsembleMember, MemberPredictions};

/// Why an engine plan could not be constructed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// No members were supplied.
    EmptyEnsemble,
    /// Members disagree on input geometry or class count, so they cannot
    /// serve the same requests.
    MemberMismatch {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyEnsemble => write!(f, "inference engine needs at least one member"),
            EngineError::MemberMismatch { detail } => {
                write!(f, "ensemble members are not servable together: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// How a session chooses its parallelism axis (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecPolicy {
    /// Pick per batch from batch size × member count × thread count.
    #[default]
    Auto,
    /// Always fan members across threads, each running the whole batch.
    MemberParallel,
    /// Always shard the batch across this many replica lanes (clamped to
    /// at least 1, to the batch size, and to [`EnginePlan::max_shards`]).
    DataParallel {
        /// Number of batch shards / replica lanes.
        shards: usize,
    },
    /// Always evaluate the shared member prefix once per mini-batch chunk
    /// and fan only the divergent tails across members, over this many
    /// batch shards (clamped like [`ExecPolicy::DataParallel`], but a
    /// single shard still shares the trunk rather than falling back to
    /// the flat member-parallel plan). Correct — and bitwise identical to
    /// the flat plans — even when the detected trunk is empty; it just
    /// saves nothing then.
    TrunkShared {
        /// Number of batch shards / replica lanes.
        shards: usize,
    },
}

/// The resolved execution plan for one request batch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Plan {
    /// One task per member over the full batch.
    MemberParallel,
    /// `shards` tasks, each running every member over one batch shard.
    DataParallel {
        /// Number of batch shards actually used.
        shards: usize,
    },
    /// `shards` tasks, each evaluating the shared trunk once per
    /// mini-batch chunk and fanning the divergent member tails.
    TrunkShared {
        /// Number of batch shards actually used.
        shards: usize,
    },
}

/// The immutable half of the engine: members (weights), geometry, planning
/// logic, and artifact load/save. Wrap it in an [`Arc`]
/// ([`EnginePlan::into_shared`]) and hand it to as many
/// [`EngineSession`]s — across as many threads — as the machine can run:
/// they all execute this one copy of the weights.
#[derive(Debug)]
pub struct EnginePlan {
    members: Vec<EnsembleMember>,
    batch_size: usize,
    policy: ExecPolicy,
    input: InputSpec,
    num_classes: usize,
    /// Longest common prefix of bitwise-identical (config and state)
    /// layer nodes across *all* members; 0 for fewer than two members.
    trunk_len: usize,
    /// Whether the trunk contains at least one parameterized node — i.e.
    /// whether sharing it actually saves work.
    trunk_profitable: bool,
}

impl EnginePlan {
    /// Builds a plan that runs each member in mini-batches of `batch_size`
    /// examples (clamped to at least 1), defaulting sessions to
    /// [`ExecPolicy::Auto`].
    ///
    /// Cached training activations are dropped from every member (a
    /// serving plan never needs them, and sessions never write new ones).
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyEnsemble`] for zero members, and
    /// [`EngineError::MemberMismatch`] when members disagree on input
    /// geometry or class count.
    pub fn new(mut members: Vec<EnsembleMember>, batch_size: usize) -> Result<Self, EngineError> {
        let Some(first) = members.first() else {
            return Err(EngineError::EmptyEnsemble);
        };
        let input = first.network.arch().input;
        let num_classes = first.network.arch().num_classes;
        for m in &members {
            let arch = m.network.arch();
            if arch.input != input || arch.num_classes != num_classes {
                return Err(EngineError::MemberMismatch {
                    detail: format!(
                        "member {} expects {}x{}x{} -> {} classes, member {} expects \
                         {}x{}x{} -> {} classes",
                        first.name,
                        input.channels,
                        input.height,
                        input.width,
                        num_classes,
                        m.name,
                        arch.input.channels,
                        arch.input.height,
                        arch.input.width,
                        arch.num_classes
                    ),
                });
            }
        }
        // Trunk detection: the longest member prefix whose nodes are
        // bitwise identical (weights, running stats, and eval-relevant
        // config) across every member. Hatched ensembles share their
        // MotherNet prefix by construction; independently trained members
        // degrade gracefully to a trunk of 0 (or of cheap stateless
        // nodes, which `trunk_profitable` filters out).
        let trunk_len = if members.len() < 2 {
            0
        } else {
            members[1..]
                .iter()
                .map(|m| members[0].network.shared_eval_prefix(&m.network))
                .min()
                .unwrap_or(0)
        };
        let trunk_profitable = members[0].network.nodes()[..trunk_len].iter().any(|node| {
            let mut stateful = false;
            node.visit_state(&mut |_| stateful = true);
            stateful
        });
        for m in members.iter_mut() {
            m.network.clear_caches();
        }
        Ok(EnginePlan {
            members,
            batch_size: batch_size.max(1),
            policy: ExecPolicy::Auto,
            input,
            num_classes,
            trunk_len,
            trunk_profitable,
        })
    }

    /// Sets the default policy sessions start with (builder-style, before
    /// the plan is shared).
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Boots a plan from an `MNE1` ensemble artifact file — the serving
    /// cold-start path. Member networks are constructed zero-initialized
    /// and restored in place (no RNG sampling), and predictions are
    /// bitwise identical to the ensemble that saved the artifact.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from reading or parsing the file.
    pub fn load(path: impl AsRef<Path>, batch_size: usize) -> Result<Self, ArtifactError> {
        let (_, members) = artifact::read_ensemble_file(path)?;
        EnginePlan::new(members, batch_size).map_err(ArtifactError::from)
    }

    /// [`EnginePlan::load`] over in-memory artifact bytes.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from parsing the bytes.
    pub fn from_artifact_bytes(bytes: &[u8], batch_size: usize) -> Result<Self, ArtifactError> {
        let (_, members) = artifact::load_ensemble(bytes)?;
        EnginePlan::new(members, batch_size).map_err(ArtifactError::from)
    }

    /// Serializes the plan's members as an `MNE1` artifact.
    pub fn to_artifact_bytes(&self, manifest: &EnsembleManifest) -> Vec<u8> {
        let members: Vec<&EnsembleMember> = self.members.iter().collect();
        artifact::save_ensemble_refs(&members, manifest)
    }

    /// Wraps the plan for sharing across sessions/threads.
    pub fn into_shared(self) -> Arc<EnginePlan> {
        Arc::new(self)
    }

    /// The default policy sessions start with.
    pub fn default_policy(&self) -> ExecPolicy {
        self.policy
    }

    /// Resolves the execution plan for a batch of `n` examples under
    /// `policy` and the current worker-thread count.
    ///
    /// The auto rule: shard the batch only when sharding yields more
    /// parallel tasks than member fan-out can — i.e. when the thread count
    /// exceeds the member count *and* the batch is large enough to cut
    /// into more than `num_members` shards of at least one mini-batch
    /// each. Plans never affect results (see module docs), only wall
    /// clock.
    ///
    /// Explicit [`ExecPolicy::DataParallel`] and
    /// [`ExecPolicy::TrunkShared`] shard requests are clamped by
    /// [`EnginePlan::clamp_shards`] — lanes beyond the worker count buy no
    /// parallelism, so an oversized request must not be able to pin
    /// unbounded per-lane scratch.
    pub fn resolve(&self, n: usize, policy: ExecPolicy) -> Plan {
        match policy {
            ExecPolicy::MemberParallel => Plan::MemberParallel,
            ExecPolicy::DataParallel { shards } => {
                let shards = self.clamp_shards(shards, n);
                if shards == 1 {
                    Plan::MemberParallel
                } else {
                    Plan::DataParallel { shards }
                }
            }
            ExecPolicy::TrunkShared { shards } => Plan::TrunkShared {
                shards: self.clamp_shards(shards, n),
            },
            ExecPolicy::Auto => {
                let threads = rayon::current_num_threads();
                let members = self.members.len();
                if self.shares_trunk() && n > 0 {
                    // Sharing a parameterized trunk saves FLOPs on every
                    // plan shape; shard only as far as there are whole
                    // mini-batch chunks and threads to run them.
                    let shards = n.div_ceil(self.batch_size).min(threads);
                    return Plan::TrunkShared {
                        shards: self.clamp_shards(shards, n),
                    };
                }
                if n == 0 || threads <= members {
                    return Plan::MemberParallel;
                }
                let shards = n.div_ceil(self.batch_size).min(threads);
                if shards > members {
                    Plan::DataParallel { shards }
                } else {
                    Plan::MemberParallel
                }
            }
        }
    }

    /// Clamps a requested shard count for a batch of `n` examples. The
    /// constraint order is deliberate and pinned by unit tests: an empty
    /// batch always resolves to one shard (nothing to split, and `0`
    /// shards would be degenerate); otherwise the request is raised to at
    /// least 1, lowered to at most one shard per example, and finally
    /// capped at [`EnginePlan::max_shards`] so an absurd request cannot
    /// pin unbounded per-lane scratch.
    pub fn clamp_shards(&self, requested: usize, n: usize) -> usize {
        if n == 0 {
            return 1;
        }
        requested.max(1).min(n).min(self.max_shards())
    }

    /// Upper bound on data-parallel shards (and so on replica lanes): the
    /// worker-thread count, with a small floor so the sharding path stays
    /// exercisable on single-core machines. Caps the per-lane scratch an
    /// explicit [`ExecPolicy::DataParallel`] request can pin.
    pub fn max_shards(&self) -> usize {
        const SHARD_FLOOR: usize = 16;
        rayon::current_num_threads().max(SHARD_FLOOR)
    }

    /// Length (in layer nodes) of the shared member trunk: the longest
    /// common prefix of bitwise-identical layers across every member,
    /// detected at plan build time. 0 when there are fewer than two
    /// members or the members share nothing.
    pub fn trunk_len(&self) -> usize {
        self.trunk_len
    }

    /// Whether the detected trunk contains parameterized work worth
    /// sharing (a trunk of only stateless nodes — e.g. the leading
    /// `Flatten` every MLP starts with — is not). [`ExecPolicy::Auto`]
    /// picks [`Plan::TrunkShared`] exactly when this holds.
    pub fn shares_trunk(&self) -> bool {
        self.trunk_profitable
    }

    /// Number of ensemble members.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Mini-batch size used per member.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Input geometry every member expects.
    pub fn input_spec(&self) -> InputSpec {
        self.input
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Read access to the members, in plan order — a borrowed slice, no
    /// per-call allocation.
    pub fn members(&self) -> &[EnsembleMember] {
        &self.members
    }

    /// Member names, in plan order — an iterator, no per-call allocation.
    pub fn member_names(&self) -> impl Iterator<Item = &str> {
        self.members.iter().map(|m| m.name.as_str())
    }

    /// Decomposes the plan back into its members.
    pub fn into_members(self) -> Vec<EnsembleMember> {
        self.members
    }
}

/// One session over a shared [`EnginePlan`].
impl EnginePlan {
    /// Opens a new session over this shared plan: per-worker workspaces
    /// and replica-lane scratch, zero weight clones. Cheap — a server
    /// opens one per shard.
    pub fn session(self: &Arc<Self>) -> EngineSession {
        EngineSession::new(Arc::clone(self))
    }
}

/// The mutable half of the engine, private to one worker: per-member
/// workspaces (lane 0) plus lazily-built replica-lane scratch for
/// data-parallel plans. Holds **no weights** — every forward pass reads
/// the shared [`EnginePlan`] through `&self`.
#[derive(Debug)]
pub struct EngineSession {
    plan: Arc<EnginePlan>,
    policy: ExecPolicy,
    /// `lanes[lane][member]`: workspace scratch. Lane 0 always exists
    /// (member-parallel axis); lanes 1.. appear the first time a
    /// data-parallel plan needs them and are reused afterwards.
    lanes: Vec<Vec<Workspace>>,
}

impl EngineSession {
    fn new(plan: Arc<EnginePlan>) -> Self {
        let lane0 = (0..plan.num_members()).map(|_| Workspace::new()).collect();
        let policy = plan.default_policy();
        EngineSession {
            plan,
            policy,
            lanes: vec![lane0],
        }
    }

    /// The shared plan this session executes.
    pub fn plan(&self) -> &Arc<EnginePlan> {
        &self.plan
    }

    /// Overrides this session's parallelism policy (other sessions over
    /// the same plan are unaffected).
    pub fn set_policy(&mut self, policy: ExecPolicy) {
        self.policy = policy;
    }

    /// The session's active parallelism policy.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// Resolves the execution plan for a batch of `n` examples under this
    /// session's policy (see [`EnginePlan::resolve`]).
    pub fn plan_for(&self, n: usize) -> Plan {
        self.plan.resolve(n, self.policy)
    }

    /// Number of materialized workspace lanes (including the primary).
    /// Starts at 1 and grows only when a data-parallel plan runs.
    pub fn replica_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Runs every member over the request batch `x: [N, C, H, W]` under
    /// the resolved plan and collects per-member probabilities.
    ///
    /// An empty batch (`N = 0`) is legal and yields `[0, K]` predictions.
    pub fn predict(&mut self, x: &Tensor) -> MemberPredictions {
        match self.plan_for(x.shape().dim(0)) {
            Plan::MemberParallel => self.predict_member_parallel(x),
            Plan::DataParallel { shards } => self.predict_data_parallel(x, shards),
            Plan::TrunkShared { shards } => self.predict_trunk_shared(x, shards),
        }
    }

    fn predict_member_parallel(&mut self, x: &Tensor) -> MemberPredictions {
        let bs = self.plan.batch_size();
        let mut jobs: Vec<(&EnsembleMember, &mut Workspace)> = self
            .plan
            .members()
            .iter()
            .zip(self.lanes[0].iter_mut())
            .collect();
        let probs: Vec<Tensor> = jobs
            .par_iter_mut()
            .map(|(member, ws)| member.predict_proba_eval(x, bs, ws))
            .collect();
        MemberPredictions::from_probs(probs)
    }

    fn predict_data_parallel(&mut self, x: &Tensor, shards: usize) -> MemberPredictions {
        let n = x.shape().dim(0);
        let ranges = shard_ranges(n, shards);
        let shards = ranges.len(); // shard_ranges may shrink degenerate requests
        if shards <= 1 {
            return self.predict_member_parallel(x);
        }
        self.ensure_lanes(shards);
        let plan = &self.plan;
        let bs = plan.batch_size();
        let members = plan.members();
        let k = plan.num_classes();
        let row = x.len() / n.max(1);

        // Each lane copies its shard rows once (staged in its first
        // workspace), then runs every shared member over the shard with
        // that member's own lane workspace.
        let mut lane_jobs: Vec<(std::ops::Range<usize>, &mut Vec<Workspace>)> =
            ranges.into_iter().zip(self.lanes.iter_mut()).collect();
        let shard_probs: Vec<Vec<Tensor>> = lane_jobs
            .par_iter_mut()
            .map(|(range, lane)| {
                let rows = range.len();
                let mut xs = lane[0].acquire_uninit(x.shape().with_dim(0, rows));
                xs.data_mut()
                    .copy_from_slice(&x.data()[range.start * row..range.end * row]);
                let out: Vec<Tensor> = members
                    .iter()
                    .zip(lane.iter_mut())
                    .map(|(m, ws)| m.predict_proba_eval(&xs, bs, ws))
                    .collect();
                lane[0].release(xs);
                out
            })
            .collect();

        // Stitch per-member outputs back in example order.
        let mut probs: Vec<Tensor> = (0..members.len()).map(|_| Tensor::zeros([n, k])).collect();
        let mut start = 0;
        for lane in &shard_probs {
            let rows = lane[0].shape().dim(0);
            for (m, shard) in lane.iter().enumerate() {
                probs[m].data_mut()[start * k..(start + rows) * k].copy_from_slice(shard.data());
            }
            start += rows;
        }
        MemberPredictions::from_probs(probs)
    }

    /// Trunk-shared execution: each lane walks its shard in mini-batch
    /// chunks, evaluates the shared member prefix **once** per chunk
    /// (from member 0's nodes — bitwise identical to every member's own
    /// prefix by construction, see [`EnginePlan::trunk_len`]), then fans
    /// only the divergent tails across members. Output is bitwise
    /// identical to the flat plans: prefix-then-tail evaluation equals
    /// whole-network evaluation node for node, and each example's forward
    /// pass is independent of its batch neighbors.
    fn predict_trunk_shared(&mut self, x: &Tensor, shards: usize) -> MemberPredictions {
        let n = x.shape().dim(0);
        if n == 0 {
            return self.predict_member_parallel(x);
        }
        let ranges = shard_ranges(n, shards);
        self.ensure_lanes(ranges.len());
        let plan = &self.plan;
        let trunk = plan.trunk_len();
        let bs = plan.batch_size();
        let members = plan.members();
        let k = plan.num_classes();
        let row = x.len() / n;

        let mut lane_jobs: Vec<(std::ops::Range<usize>, &mut Vec<Workspace>)> =
            ranges.into_iter().zip(self.lanes.iter_mut()).collect();
        let shard_probs: Vec<Vec<Tensor>> = lane_jobs
            .par_iter_mut()
            .map(|(range, lane)| {
                let rows = range.len();
                let mut outs: Vec<Tensor> =
                    members.iter().map(|_| Tensor::zeros([rows, k])).collect();
                let mut start = range.start;
                while start < range.end {
                    let end = (start + bs).min(range.end);
                    let chunk = end - start;
                    let mut xb = lane[0].acquire_uninit(x.shape().with_dim(0, chunk));
                    xb.data_mut()
                        .copy_from_slice(&x.data()[start * row..end * row]);
                    let h = members[0]
                        .network
                        .forward_eval_prefix_with(&xb, trunk, &mut lane[0]);
                    lane[0].release(xb);
                    let local = start - range.start;
                    let mut tails: Vec<((&EnsembleMember, &mut Workspace), &mut Tensor)> = members
                        .iter()
                        .zip(lane.iter_mut())
                        .zip(outs.iter_mut())
                        .collect();
                    tails.par_iter_mut().for_each(|((member, ws), out)| {
                        let mut probs = member.network.forward_eval_tail_with(&h, trunk, ws);
                        ops::softmax_rows(&mut probs);
                        out.data_mut()[local * k..(local + chunk) * k]
                            .copy_from_slice(probs.data());
                        ws.release(probs);
                    });
                    lane[0].release(h);
                    start = end;
                }
                outs
            })
            .collect();

        // Stitch per-member outputs back in example order, exactly as the
        // data-parallel plan does.
        let mut probs: Vec<Tensor> = (0..members.len()).map(|_| Tensor::zeros([n, k])).collect();
        let mut start = 0;
        for lane in &shard_probs {
            let rows = lane[0].shape().dim(0);
            for (m, shard) in lane.iter().enumerate() {
                probs[m].data_mut()[start * k..(start + rows) * k].copy_from_slice(shard.data());
            }
            start += rows;
        }
        MemberPredictions::from_probs(probs)
    }

    /// Grows the workspace-lane pool to at least `lanes` lanes. Unlike the
    /// pre-split engine this clones **no weights** — a lane is just one
    /// empty workspace per member.
    fn ensure_lanes(&mut self, lanes: usize) {
        let members = self.plan.num_members();
        while self.lanes.len() < lanes {
            self.lanes
                .push((0..members).map(|_| Workspace::new()).collect());
        }
    }

    /// Ensemble-averaged probabilities `[N, K]` for the request batch.
    pub fn predict_average(&mut self, x: &Tensor) -> Tensor {
        combine::ensemble_average(&self.predict(x))
    }

    /// Hard labels under ensemble averaging (the paper's EA rule).
    pub fn predict_labels(&mut self, x: &Tensor) -> Vec<usize> {
        ops::argmax_rows(&self.predict_average(x))
    }

    /// Hard labels under majority voting with probability tie-breaking.
    pub fn predict_vote_labels(&mut self, x: &Tensor) -> Vec<usize> {
        combine::vote_labels(&self.predict(x))
    }

    /// Closes the session, returning its handle on the shared plan.
    pub fn into_plan(self) -> Arc<EnginePlan> {
        self.plan
    }
}

/// Compatibility facade over the plan/session split: one shared
/// [`EnginePlan`] plus one [`EngineSession`], exposing the single-owner
/// API earlier PRs shipped. New code that wants several workers over one
/// ensemble should hold an `Arc<EnginePlan>` and open sessions directly;
/// the facade's [`InferenceEngine::plan_handle`] bridges the two worlds.
#[derive(Debug)]
pub struct InferenceEngine {
    session: EngineSession,
}

impl InferenceEngine {
    /// Builds a plan from `members` and opens one session over it (see
    /// [`EnginePlan::new`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyEnsemble`] for zero members, and
    /// [`EngineError::MemberMismatch`] when members disagree on input
    /// geometry or class count.
    pub fn new(members: Vec<EnsembleMember>, batch_size: usize) -> Result<Self, EngineError> {
        Ok(InferenceEngine::from_plan(
            EnginePlan::new(members, batch_size)?.into_shared(),
        ))
    }

    /// Opens an engine (facade) over an existing shared plan.
    pub fn from_plan(plan: Arc<EnginePlan>) -> Self {
        InferenceEngine {
            session: plan.session(),
        }
    }

    /// Boots an engine from an `MNE1` ensemble artifact file (see
    /// [`EnginePlan::load`]).
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from reading or parsing the file.
    pub fn load(path: impl AsRef<Path>, batch_size: usize) -> Result<Self, ArtifactError> {
        Ok(InferenceEngine::from_plan(
            EnginePlan::load(path, batch_size)?.into_shared(),
        ))
    }

    /// [`InferenceEngine::load`] over in-memory artifact bytes.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from parsing the bytes.
    pub fn from_artifact_bytes(bytes: &[u8], batch_size: usize) -> Result<Self, ArtifactError> {
        Ok(InferenceEngine::from_plan(
            EnginePlan::from_artifact_bytes(bytes, batch_size)?.into_shared(),
        ))
    }

    /// Serializes the engine's members as an `MNE1` artifact.
    pub fn to_artifact_bytes(&self, manifest: &EnsembleManifest) -> Vec<u8> {
        self.session.plan().to_artifact_bytes(manifest)
    }

    /// A shareable handle on the engine's plan — open more sessions (or a
    /// sharded server) over the same weights.
    pub fn plan_handle(&self) -> Arc<EnginePlan> {
        Arc::clone(self.session.plan())
    }

    /// Overrides this engine's parallelism policy (the default is
    /// [`ExecPolicy::Auto`]).
    pub fn set_policy(&mut self, policy: ExecPolicy) {
        self.session.set_policy(policy);
    }

    /// The active parallelism policy.
    pub fn policy(&self) -> ExecPolicy {
        self.session.policy()
    }

    /// Resolves the execution plan for a batch of `n` examples (see
    /// [`EnginePlan::resolve`]).
    pub fn plan(&self, n: usize) -> Plan {
        self.session.plan_for(n)
    }

    /// Upper bound on data-parallel shards (see
    /// [`EnginePlan::max_shards`]).
    pub fn max_shards(&self) -> usize {
        self.session.plan().max_shards()
    }

    /// Number of ensemble members.
    pub fn num_members(&self) -> usize {
        self.session.plan().num_members()
    }

    /// Mini-batch size used per member.
    pub fn batch_size(&self) -> usize {
        self.session.plan().batch_size()
    }

    /// Input geometry every member expects.
    pub fn input_spec(&self) -> InputSpec {
        self.session.plan().input_spec()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.session.plan().num_classes()
    }

    /// Number of materialized workspace lanes (see
    /// [`EngineSession::replica_lanes`]).
    pub fn replica_lanes(&self) -> usize {
        self.session.replica_lanes()
    }

    /// Member names, in engine order — no per-call allocation.
    pub fn member_names(&self) -> impl Iterator<Item = &str> {
        self.session.plan().member_names()
    }

    /// Read access to the members, in engine order — a borrowed slice, no
    /// per-call allocation.
    pub fn members(&self) -> &[EnsembleMember] {
        self.session.plan().members()
    }

    /// Runs every member over the request batch (see
    /// [`EngineSession::predict`]).
    pub fn predict(&mut self, x: &Tensor) -> MemberPredictions {
        self.session.predict(x)
    }

    /// Ensemble-averaged probabilities `[N, K]` for the request batch.
    pub fn predict_average(&mut self, x: &Tensor) -> Tensor {
        self.session.predict_average(x)
    }

    /// Hard labels under ensemble averaging (the paper's EA rule).
    pub fn predict_labels(&mut self, x: &Tensor) -> Vec<usize> {
        self.session.predict_labels(x)
    }

    /// Hard labels under majority voting with probability tie-breaking.
    pub fn predict_vote_labels(&mut self, x: &Tensor) -> Vec<usize> {
        self.session.predict_vote_labels(x)
    }

    /// Decomposes the engine back into its plan (session scratch dropped).
    pub fn into_plan(self) -> Arc<EnginePlan> {
        self.session.into_plan()
    }

    /// Decomposes the engine back into its members (workspaces and lane
    /// scratch dropped). If other sessions still share the plan, the
    /// members are cloned; sole owners pay nothing.
    pub fn into_members(self) -> Vec<EnsembleMember> {
        match Arc::try_unwrap(self.session.into_plan()) {
            Ok(plan) => plan.into_members(),
            Err(shared) => shared.members().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_nn::arch::{Architecture, InputSpec};
    use mn_nn::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn members(n: u64) -> Vec<EnsembleMember> {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![6]);
        (0..n)
            .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
            .collect()
    }

    fn engine(n: u64, batch: usize) -> InferenceEngine {
        InferenceEngine::new(members(n), batch).unwrap()
    }

    /// Members cloned from one seed network with only the classifier head
    /// re-perturbed — the hatched-ensemble shape: every node but the last
    /// Dense is bitwise shared.
    fn trunked_members(n: u64) -> Vec<EnsembleMember> {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![6]);
        let base = Network::seeded(&arch, 42);
        (0..n)
            .map(|s| {
                let mut net = base.clone();
                match net.nodes_mut().last_mut() {
                    Some(mn_nn::LayerNode::Dense(l)) => {
                        for w in l.weight.value.data_mut() {
                            *w += (s as f32 + 1.0) * 0.01;
                        }
                    }
                    other => panic!("expected a dense head, got {other:?}"),
                }
                EnsembleMember::new(format!("t{s}"), net)
            })
            .collect()
    }

    #[test]
    fn engine_matches_sequential_collection() {
        let x = Tensor::randn([7, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(1));
        let mut seq_members = members(3);
        let sequential = MemberPredictions::collect(&mut seq_members, &x, 2);
        let mut engine = engine(3, 2);
        let parallel = engine.predict(&x);
        assert_eq!(parallel.num_members(), 3);
        for (p, s) in parallel.probs().iter().zip(sequential.probs()) {
            assert_eq!(p.data(), s.data(), "engine diverged from sequential path");
        }
    }

    #[test]
    fn repeated_predictions_reuse_workspaces_and_stay_identical() {
        let mut engine = engine(2, 4);
        let x = Tensor::randn([9, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(2));
        let first = engine.predict(&x);
        let second = engine.predict(&x);
        for (a, b) in first.probs().iter().zip(second.probs()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn combination_rules_run_on_engine_output() {
        let mut engine = engine(3, 8);
        let x = Tensor::randn([5, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(3));
        let avg = engine.predict_average(&x);
        assert_eq!(avg.shape().dims(), &[5, 3]);
        for i in 0..5 {
            let row: f32 = (0..3).map(|j| avg.at2(i, j)).sum();
            assert!((row - 1.0).abs() < 1e-4, "row {i} sums to {row}");
        }
        assert_eq!(engine.predict_labels(&x).len(), 5);
        assert_eq!(engine.predict_vote_labels(&x).len(), 5);
    }

    #[test]
    fn accessors_expose_members() {
        let engine = engine(2, 16);
        assert_eq!(engine.num_members(), 2);
        assert_eq!(engine.batch_size(), 16);
        assert_eq!(engine.member_names().collect::<Vec<_>>(), vec!["m0", "m1"]);
        assert_eq!(engine.members().len(), 2);
        assert_eq!(engine.members()[1].name, "m1");
        assert_eq!(engine.num_classes(), 3);
        assert_eq!(engine.input_spec(), InputSpec::new(1, 2, 2));
        let back = engine.into_members();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn empty_ensemble_yields_typed_error() {
        assert_eq!(
            InferenceEngine::new(Vec::new(), 8).unwrap_err(),
            EngineError::EmptyEnsemble
        );
    }

    #[test]
    fn mismatched_members_yield_typed_error() {
        let arch_a = Architecture::mlp("a", InputSpec::new(1, 2, 2), 3, vec![4]);
        let arch_b = Architecture::mlp("b", InputSpec::new(1, 2, 2), 5, vec![4]);
        let mixed = vec![
            EnsembleMember::new("a", Network::seeded(&arch_a, 0)),
            EnsembleMember::new("b", Network::seeded(&arch_b, 1)),
        ];
        assert!(matches!(
            InferenceEngine::new(mixed, 8),
            Err(EngineError::MemberMismatch { .. })
        ));
    }

    #[test]
    fn zero_batch_size_clamps_to_one() {
        let mut engine = engine(1, 0);
        assert_eq!(engine.batch_size(), 1);
        let x = Tensor::zeros([2, 1, 2, 2]);
        assert_eq!(engine.predict_labels(&x).len(), 2);
    }

    #[test]
    fn data_parallel_plan_matches_member_parallel_bitwise() {
        let x = Tensor::randn([13, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(4));
        let mut baseline = engine(3, 4);
        baseline.set_policy(ExecPolicy::MemberParallel);
        let reference = baseline.predict(&x);
        for shards in [2usize, 3, 5, 13, 40] {
            let mut sharded = engine(3, 4);
            sharded.set_policy(ExecPolicy::DataParallel { shards });
            let got = sharded.predict(&x);
            for (m, (a, b)) in reference.probs().iter().zip(got.probs()).enumerate() {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "member {m} diverged under {shards}-way sharding"
                );
            }
            assert!(sharded.replica_lanes() >= 2, "sharding built replica lanes");
        }
    }

    #[test]
    fn replica_lanes_grow_lazily_and_persist() {
        let mut e = engine(2, 2);
        assert_eq!(e.replica_lanes(), 1);
        e.set_policy(ExecPolicy::MemberParallel);
        let x = Tensor::zeros([8, 1, 2, 2]);
        let _ = e.predict(&x);
        assert_eq!(e.replica_lanes(), 1, "member-parallel must not build lanes");
        e.set_policy(ExecPolicy::DataParallel { shards: 4 });
        let _ = e.predict(&x);
        assert_eq!(e.replica_lanes(), 4);
        let _ = e.predict(&x);
        assert_eq!(e.replica_lanes(), 4, "lanes are reused, not rebuilt");
    }

    #[test]
    fn explicit_shards_clamp_to_batch_and_lane_cap() {
        let mut e = engine(2, 2);
        e.set_policy(ExecPolicy::DataParallel { shards: 0 });
        assert_eq!(e.plan(5), Plan::MemberParallel);
        e.set_policy(ExecPolicy::DataParallel { shards: 8 });
        assert_eq!(e.plan(3), Plan::DataParallel { shards: 3 });
        assert_eq!(e.plan(0), Plan::MemberParallel);
        // An absurd request must not be able to demand one lane per
        // example of a huge batch.
        e.set_policy(ExecPolicy::DataParallel { shards: usize::MAX });
        match e.plan(1_000_000) {
            Plan::DataParallel { shards } => assert_eq!(shards, e.max_shards()),
            plan => panic!("expected a capped data-parallel plan, got {plan:?}"),
        }
        let x = Tensor::zeros([64, 1, 2, 2]);
        let _ = e.predict(&x);
        assert!(e.replica_lanes() <= e.max_shards());
    }

    #[test]
    fn trunk_detection_finds_hatched_prefix_and_ignores_stateless_trunks() {
        // Head-only divergence: everything up to (not including) the
        // final Dense is shared, and the trunk carries real weights.
        let plan = EnginePlan::new(trunked_members(4), 8).unwrap();
        let nodes = plan.members()[0].network.nodes().len();
        assert_eq!(plan.trunk_len(), nodes - 1);
        assert!(plan.shares_trunk());

        // Independently seeded members share only the leading stateless
        // Flatten — detected, but not worth sharing.
        let flat = EnginePlan::new(members(3), 8).unwrap();
        assert_eq!(flat.trunk_len(), 1);
        assert!(!flat.shares_trunk());

        // A single member has no trunk to share.
        let solo = EnginePlan::new(members(1), 8).unwrap();
        assert_eq!(solo.trunk_len(), 0);
        assert!(!solo.shares_trunk());
    }

    #[test]
    fn auto_picks_trunk_shared_exactly_when_trunk_is_parameterized() {
        let trunked = EnginePlan::new(trunked_members(3), 4).unwrap();
        assert!(matches!(
            trunked.resolve(16, ExecPolicy::Auto),
            Plan::TrunkShared { .. }
        ));
        // Empty batches never shard and never need the trunk path.
        assert_eq!(trunked.resolve(0, ExecPolicy::Auto), Plan::MemberParallel);
        // A stateless trunk keeps the flat auto rule.
        let flat = EnginePlan::new(members(3), 4).unwrap();
        assert!(!matches!(
            flat.resolve(16, ExecPolicy::Auto),
            Plan::TrunkShared { .. }
        ));
    }

    #[test]
    fn trunk_shared_matches_member_parallel_bitwise() {
        let x = Tensor::randn([13, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(6));
        let plan = EnginePlan::new(trunked_members(4), 4)
            .unwrap()
            .into_shared();
        let mut baseline = plan.session();
        baseline.set_policy(ExecPolicy::MemberParallel);
        let reference = baseline.predict(&x);
        // Members genuinely diverge (the trunk path has something to get
        // wrong): head perturbations must show up in the outputs.
        assert_ne!(
            reference.probs()[0].data(),
            reference.probs()[1].data(),
            "trunked members must still disagree at the head"
        );
        for shards in [1usize, 2, 3, 5, 13, 40] {
            let mut trunked = plan.session();
            trunked.set_policy(ExecPolicy::TrunkShared { shards });
            let got = trunked.predict(&x);
            for (m, (a, b)) in reference.probs().iter().zip(got.probs()).enumerate() {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "member {m} diverged under {shards}-shard trunk sharing"
                );
            }
        }
        // Zero shared prefix (explicit policy on unrelated members) is
        // correct too — it just shares nothing.
        let flat_plan = EnginePlan::new(members(3), 4).unwrap().into_shared();
        let mut a = flat_plan.session();
        a.set_policy(ExecPolicy::MemberParallel);
        let mut b = flat_plan.session();
        b.set_policy(ExecPolicy::TrunkShared { shards: 2 });
        let ra = a.predict(&x);
        let rb = b.predict(&x);
        for (p, q) in ra.probs().iter().zip(rb.probs()) {
            assert_eq!(p.data(), q.data());
        }
    }

    #[test]
    fn trunk_shared_handles_empty_batch_and_single_shard() {
        let plan = EnginePlan::new(trunked_members(2), 4)
            .unwrap()
            .into_shared();
        let mut s = plan.session();
        s.set_policy(ExecPolicy::TrunkShared { shards: 3 });
        let empty = Tensor::zeros([0, 1, 2, 2]);
        let preds = s.predict(&empty);
        assert_eq!(preds.num_examples(), 0);
        assert_eq!(preds.num_members(), 2);
        // One shard stays on the trunk-shared plan (unlike data-parallel,
        // which would fall back to member-parallel).
        assert_eq!(
            plan.resolve(8, ExecPolicy::TrunkShared { shards: 1 }),
            Plan::TrunkShared { shards: 1 }
        );
        let x = Tensor::randn([3, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(7));
        s.set_policy(ExecPolicy::TrunkShared { shards: 1 });
        assert_eq!(s.predict(&x).num_examples(), 3);
    }

    #[test]
    fn clamp_shards_pins_constraint_order() {
        let plan = EnginePlan::new(members(2), 2).unwrap();
        // Empty batch: always one shard, regardless of the request.
        assert_eq!(plan.clamp_shards(0, 0), 1);
        assert_eq!(plan.clamp_shards(usize::MAX, 0), 1);
        // Zero-shard requests are raised to one.
        assert_eq!(plan.clamp_shards(0, 5), 1);
        // At most one shard per example.
        assert_eq!(plan.clamp_shards(8, 3), 3);
        // The lane cap binds last.
        assert_eq!(plan.clamp_shards(usize::MAX, 1_000_000), plan.max_shards());
        // And resolve() exposes the same behavior through both policies.
        assert_eq!(
            plan.resolve(0, ExecPolicy::DataParallel { shards: 7 }),
            Plan::MemberParallel
        );
        assert_eq!(
            plan.resolve(0, ExecPolicy::TrunkShared { shards: 7 }),
            Plan::TrunkShared { shards: 1 }
        );
        assert_eq!(
            plan.resolve(5, ExecPolicy::DataParallel { shards: 0 }),
            Plan::MemberParallel
        );
        assert_eq!(
            plan.resolve(3, ExecPolicy::DataParallel { shards: 8 }),
            Plan::DataParallel { shards: 3 }
        );
        assert_eq!(
            plan.resolve(1_000_000, ExecPolicy::DataParallel { shards: usize::MAX }),
            Plan::DataParallel {
                shards: plan.max_shards()
            }
        );
    }

    #[test]
    fn auto_plan_prefers_member_fanout_unless_sharding_wins() {
        let e = engine(3, 4);
        // Empty batches never shard.
        assert_eq!(e.plan(0), Plan::MemberParallel);
        // With the test runner's thread count unknown, pin only the
        // invariants: sharding must yield strictly more tasks than member
        // fan-out, and never more shards than threads or mini-batches.
        for n in [1usize, 8, 64, 1024] {
            match e.plan(n) {
                Plan::MemberParallel => {}
                Plan::DataParallel { shards } => {
                    assert!(shards > e.num_members());
                    assert!(shards <= rayon::current_num_threads());
                    assert!(shards <= n.div_ceil(e.batch_size()));
                }
                Plan::TrunkShared { .. } => {
                    panic!("independently seeded members must not auto-share a trunk")
                }
            }
        }
    }

    #[test]
    fn empty_batch_under_data_parallel_policy() {
        let mut e = engine(2, 4);
        e.set_policy(ExecPolicy::DataParallel { shards: 3 });
        let empty = Tensor::zeros([0, 1, 2, 2]);
        let preds = e.predict(&empty);
        assert_eq!(preds.num_examples(), 0);
        assert_eq!(preds.num_members(), 2);
    }

    #[test]
    fn sessions_share_one_plan_without_weight_clones() {
        // The acceptance criterion of the plan/session split: N sessions
        // over one plan reference the *same* member storage (pointer
        // identity), produce identical output, and per-session policies
        // stay independent.
        let plan = EnginePlan::new(members(3), 4).unwrap().into_shared();
        let mut a = plan.session();
        let mut b = plan.session();
        assert!(
            Arc::ptr_eq(a.plan(), b.plan()),
            "sessions must share one plan"
        );
        let pa = a.plan().members().as_ptr();
        let pb = b.plan().members().as_ptr();
        assert_eq!(pa, pb, "sessions must not clone member storage");
        // First member's weight data is the same allocation from both.
        let wa = a.plan().members()[0].network.nodes().as_ptr();
        let wb = b.plan().members()[0].network.nodes().as_ptr();
        assert_eq!(wa, wb, "member weights must be shared, not cloned");

        let x = Tensor::randn([10, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(9));
        b.set_policy(ExecPolicy::DataParallel { shards: 4 });
        assert_eq!(a.policy(), ExecPolicy::Auto, "policies are per-session");
        let ra = a.predict(&x);
        let rb = b.predict(&x);
        for (m, (p, q)) in ra.probs().iter().zip(rb.probs()).enumerate() {
            assert_eq!(p.data(), q.data(), "member {m} diverged across sessions");
        }
        // Data-parallel lanes grew only in the session that ran them.
        assert_eq!(a.replica_lanes(), 1);
        assert!(b.replica_lanes() >= 2);
    }

    #[test]
    fn with_policy_sets_the_session_default() {
        let plan = EnginePlan::new(members(2), 4)
            .unwrap()
            .with_policy(ExecPolicy::DataParallel { shards: 2 })
            .into_shared();
        assert_eq!(
            plan.default_policy(),
            ExecPolicy::DataParallel { shards: 2 }
        );
        // New sessions inherit the plan default; overriding one session
        // leaves the plan (and future sessions) untouched.
        let mut session = plan.session();
        assert_eq!(session.policy(), ExecPolicy::DataParallel { shards: 2 });
        assert_eq!(session.plan_for(8), Plan::DataParallel { shards: 2 });
        session.set_policy(ExecPolicy::MemberParallel);
        assert_eq!(
            plan.session().policy(),
            ExecPolicy::DataParallel { shards: 2 }
        );
    }

    #[test]
    fn facade_matches_direct_session_bitwise() {
        // Old API (facade) vs new API (plan + session): same bits.
        let x = Tensor::randn([8, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(10));
        let mut old = engine(3, 4);
        let plan = EnginePlan::new(members(3), 4).unwrap().into_shared();
        let mut new = plan.session();
        let a = old.predict(&x);
        let b = new.predict(&x);
        for (m, (p, q)) in a.probs().iter().zip(b.probs()).enumerate() {
            assert_eq!(p.data(), q.data(), "member {m} diverged old-vs-new API");
        }
    }
}

//! The Super Learner (SL): stacked generalization with learned
//! non-negative member weights (van der Laan et al.), one of the paper's
//! four inference methods.
//!
//! The combiner predicts `p = Σ_m w_m p_m` with `w = softmax(α)`; the
//! logits `α` are fit by gradient descent on the negative log-likelihood of
//! a held-out validation set. Softmax parameterization keeps the weights on
//! the simplex, which is the standard convex-combination super learner.

use mn_tensor::Tensor;

use crate::member::MemberPredictions;

/// Hyper-parameters for fitting a [`SuperLearner`].
#[derive(Clone, Copy, Debug)]
pub struct SuperLearnerConfig {
    /// Gradient-descent steps.
    pub steps: usize,
    /// Learning rate on the weight logits.
    pub lr: f32,
}

impl Default for SuperLearnerConfig {
    fn default() -> Self {
        SuperLearnerConfig {
            steps: 300,
            lr: 0.5,
        }
    }
}

/// A fitted super learner: a convex combination of ensemble members.
#[derive(Clone, Debug)]
pub struct SuperLearner {
    weights: Vec<f32>,
}

impl SuperLearner {
    /// Uniform weights (equivalent to ensemble averaging) — the starting
    /// point of fitting and a sensible fallback.
    pub fn uniform(num_members: usize) -> Self {
        assert!(num_members > 0, "need at least one member");
        SuperLearner {
            weights: vec![1.0 / num_members as f32; num_members],
        }
    }

    /// Fits member weights on validation predictions and labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels` length does not match the prediction count.
    pub fn fit(val_preds: &MemberPredictions, labels: &[usize], cfg: &SuperLearnerConfig) -> Self {
        let n = val_preds.num_examples();
        let k = val_preds.num_classes();
        let m = val_preds.num_members();
        assert_eq!(labels.len(), n, "labels length mismatch");

        let mut alpha = vec![0.0f32; m];
        for _ in 0..cfg.steps {
            let w = softmax(&alpha);
            // Combined probability of the true label per example.
            // dL/dw_j = -(1/N) Σ_i p_j(y_i) / p(y_i)
            let mut grad_w = vec![0.0f32; m];
            for (i, &label) in labels.iter().enumerate() {
                let mut p_true = 0.0f32;
                for (j, probs) in val_preds.probs().iter().enumerate() {
                    p_true += w[j] * probs.data()[i * k + label];
                }
                let p_true = p_true.max(1e-9);
                for (j, probs) in val_preds.probs().iter().enumerate() {
                    grad_w[j] -= probs.data()[i * k + label] / p_true;
                }
            }
            let inv_n = 1.0 / n as f32;
            grad_w.iter_mut().for_each(|g| *g *= inv_n);
            // Chain through softmax: dL/dα_j = w_j (g_j − Σ_m w_m g_m).
            let dot: f32 = w.iter().zip(&grad_w).map(|(a, b)| a * b).sum();
            for j in 0..m {
                alpha[j] -= cfg.lr * w[j] * (grad_w[j] - dot);
            }
        }
        SuperLearner {
            weights: softmax(&alpha),
        }
    }

    /// The fitted convex weights (sum to 1).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Combines member predictions with the fitted weights.
    ///
    /// # Panics
    ///
    /// Panics if the member count differs from the fitted weights.
    pub fn combine(&self, preds: &MemberPredictions) -> Tensor {
        assert_eq!(
            preds.num_members(),
            self.weights.len(),
            "member count does not match fitted weights"
        );
        let mut out = Tensor::zeros([preds.num_examples(), preds.num_classes()]);
        for (w, p) in self.weights.iter().zip(preds.probs()) {
            out.axpy(*w, p);
        }
        out
    }

    /// Hard labels from the weighted combination.
    pub fn predict(&self, preds: &MemberPredictions) -> Vec<usize> {
        mn_tensor::ops::argmax_rows(&self.combine(preds))
    }
}

fn softmax(alpha: &[f32]) -> Vec<f32> {
    let max = alpha.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = alpha.iter().map(|a| (a - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Member 0 is always right, member 1 always wrong: fitting must put
    /// nearly all weight on member 0.
    #[test]
    fn fit_upweights_the_good_member() {
        let good = Tensor::from_vec([4, 2], vec![0.9, 0.1, 0.9, 0.1, 0.1, 0.9, 0.1, 0.9]);
        let bad = Tensor::from_vec([4, 2], vec![0.1, 0.9, 0.1, 0.9, 0.9, 0.1, 0.9, 0.1]);
        let preds = MemberPredictions::from_probs(vec![good, bad]);
        let labels = vec![0, 0, 1, 1];
        let sl = SuperLearner::fit(&preds, &labels, &SuperLearnerConfig::default());
        assert!(sl.weights()[0] > 0.9, "weights: {:?}", sl.weights());
        assert_eq!(sl.predict(&preds), labels);
    }

    #[test]
    fn weights_stay_on_simplex() {
        let a = Tensor::filled([3, 2], 0.5);
        let b = Tensor::filled([3, 2], 0.5);
        let preds = MemberPredictions::from_probs(vec![a, b]);
        let sl = SuperLearner::fit(&preds, &[0, 1, 0], &SuperLearnerConfig::default());
        let sum: f32 = sl.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(sl.weights().iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn uniform_equals_ensemble_average() {
        let a = Tensor::from_vec([1, 2], vec![0.8, 0.2]);
        let b = Tensor::from_vec([1, 2], vec![0.4, 0.6]);
        let preds = MemberPredictions::from_probs(vec![a, b]);
        let sl = SuperLearner::uniform(2);
        let combined = sl.combine(&preds);
        assert!((combined.at2(0, 0) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn sl_never_much_worse_than_best_member_on_val() {
        // Fit on a set where member 1 is better; SL val accuracy must be at
        // least member 1's.
        let m0 = Tensor::from_vec([4, 2], vec![0.6, 0.4, 0.4, 0.6, 0.6, 0.4, 0.6, 0.4]);
        let m1 = Tensor::from_vec([4, 2], vec![0.9, 0.1, 0.9, 0.1, 0.1, 0.9, 0.1, 0.9]);
        let labels = vec![0, 0, 1, 1];
        let preds = MemberPredictions::from_probs(vec![m0, m1]);
        let sl = SuperLearner::fit(&preds, &labels, &SuperLearnerConfig::default());
        let sl_err = mn_nn::metrics::error_rate(&sl.predict(&preds), &labels);
        assert_eq!(sl_err, 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match fitted weights")]
    fn combine_validates_member_count() {
        let preds = MemberPredictions::from_probs(vec![Tensor::filled([1, 2], 0.5)]);
        SuperLearner::uniform(3).combine(&preds);
    }
}

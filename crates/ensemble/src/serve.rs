//! [`Server`]: a sharded, backpressured, dynamic-batching, self-healing
//! front-end over a shared [`EnginePlan`].
//!
//! Production ensemble traffic is dominated by single-example requests,
//! but every kernel underneath is batch-oriented — served one by one,
//! each request would pay the full member fan-out for one row of GEMM
//! work. And one batching worker caps the whole server at a single
//! engine's throughput. The server closes both gaps:
//!
//! ```text
//!                  ┌──────────────────────────────┐
//!  ServeClient ──▶ │   bounded MPMC request queue │──▶ shard 0: EngineSession ─┐
//!  ServeClient ──▶ │  (Overloaded when full)      │──▶ shard 1: EngineSession ─┼─▶ replies
//!      ...         │                              │──▶ shard N: EngineSession ─┘
//!                  └──────────────────────────────┘         │            ▲
//!                                            Arc<EnginePlan> (one weight copy)
//!                                                           │            │ respawn
//!                                                      supervisor ───────┘
//! ```
//!
//! * **Sharding** — [`ServerBuilder::shards`] starts N worker threads,
//!   each owning an [`EngineSession`] over one shared [`EnginePlan`]: no
//!   per-shard weight clones, N concurrent micro-batches.
//! * **Backpressure** — the request queue is bounded
//!   ([`ServerBuilder::queue_capacity`]). A submit against a full queue
//!   fails *immediately* with [`ServeError::Overloaded`] (carrying the
//!   observed queue depth) instead of growing the queue without bound;
//!   the server keeps serving and later submits succeed again.
//! * **Dynamic micro-batching** — each shard coalesces queued requests
//!   into one engine call, up to [`BatchingConfig::max_batch`] examples
//!   or until [`BatchingConfig::max_wait`] has passed since the batch's
//!   *first request was enqueued* (an idle server adds at most `max_wait`
//!   latency, a busy one none — and a request that already sat in the
//!   queue for the whole window is flushed immediately rather than
//!   charged a second window). A batch also never stays open past the
//!   earliest deadline among its admitted requests.
//! * **Per-request deadlines** — [`ServeClient::submit_with_deadline`]
//!   (or a [`ServerBuilder::default_deadline`]) attaches a latency
//!   budget. Expired requests are shed *in the queue* with a typed
//!   [`ServeError::DeadlineExceeded`] before any eval FLOPs are spent on
//!   them, and [`PendingPrediction::wait`] returns the same error
//!   client-side the moment the budget runs out. Sheds are tallied in
//!   [`ServerStats::deadline_expired`].
//! * **Supervision & respawn** — a supervisor thread watches for worker
//!   death. A panicked shard is respawned as a fresh [`EngineSession`]
//!   off the shared plan (cheap by construction — no weights to copy),
//!   under a bounded [`ServerBuilder::restart_budget`] with exponential
//!   [`ServerBuilder::restart_backoff`]. Restarts are tallied in
//!   [`ServerReport::restarts`]; per-shard counters live outside the
//!   worker threads, so they survive the death and keep accumulating
//!   across shard incarnations. If every worker is dead and the budget
//!   is spent, pending requests fail fast with
//!   [`ServeError::WorkerGone`] and the queue closes — no client ever
//!   hangs on a server that cannot answer.
//! * **Brownout degradation** — under pressure the ensemble itself is
//!   the degradation lever: instead of rejecting, shards switch to
//!   gate-only/cascade execution ([`BrownoutConfig::policy`], reusing
//!   [`crate::engine::ExecPolicy::Cascade`]) and mark each answer
//!   [`Prediction::degraded`]. Entry when the queue depth crosses
//!   [`BrownoutConfig::high_water`] *or* the restart budget is exhausted
//!   (sticky); recovery with hysteresis once depth falls to
//!   [`BrownoutConfig::low_water`]. Depth-triggered brownout is opt-in
//!   ([`ServerBuilder::brownout`]); budget-exhaustion brownout is always
//!   on — degraded answers beat a dead server.
//! * **Uncertainty surface** — every [`Prediction`] carries the gate
//!   [`Prediction::uncertainty`] and whether the example
//!   [`Prediction::escalated`] to the full ensemble.
//! * **Graceful shutdown** — [`Server::shutdown`] closes the queue to new
//!   submissions, lets every shard drain the requests already admitted
//!   (each gets its answer), then joins supervisor and workers and
//!   returns per-shard plus aggregate [`ServerStats`].
//! * **Panic containment** — every queue lock recovers from mutex
//!   poisoning, so one worker dying mid-request cannot cascade panics
//!   into the other shards or any client: an orphaned request's
//!   [`PendingPrediction::wait`] returns [`ServeError::WorkerGone`]
//!   instead of blocking forever, and [`Server::shutdown`] counts the
//!   death in [`ServerReport::worker_panics`] rather than re-panicking.
//!
//! Failure behavior is exercised through the named failpoints in
//! [`crate::faults`] ([`crate::faults::sites::QUEUE_POP`],
//! [`crate::faults::sites::WORKER_EVAL`],
//! [`crate::faults::sites::SHUTDOWN_DRAIN`]) — see the chaos suite.
//!
//! Micro-batch composition and shard count never affect results: each
//! example's forward pass is independent of its batch neighbors (the
//! engine's determinism contract), so a non-degraded request answered
//! alone on shard 3 is bitwise identical to the same request answered
//! inside a full batch on shard 0 — pinned by the `serving_stack` and
//! `chaos_serving` integration suites.
//!
//! ## Example
//!
//! ```
//! use mn_ensemble::engine::EnginePlan;
//! use mn_ensemble::serve::Server;
//! use mn_ensemble::EnsembleMember;
//! use mn_nn::arch::{Architecture, InputSpec};
//! use mn_nn::Network;
//! use mn_tensor::Tensor;
//!
//! let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![4]);
//! let members = vec![EnsembleMember::new("m", Network::seeded(&arch, 0))];
//! let plan = EnginePlan::new(members, 32).unwrap().into_shared();
//! let server = Server::builder(plan).shards(2).queue_capacity(64).start();
//! let pending = server.submit(&Tensor::zeros([1, 2, 2])).unwrap();
//! let prediction = pending.wait().unwrap();
//! assert_eq!(prediction.probs.len(), 3);
//! assert!(!prediction.degraded);
//! let report = server.shutdown();
//! assert_eq!(report.aggregate.requests, 1);
//! assert_eq!(report.per_shard.len(), 2);
//! assert_eq!(report.restarts, 0);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mn_nn::arch::InputSpec;
use mn_tensor::{ops, Tensor, Workspace};

use crate::engine::{CascadePolicy, EnginePlan, EngineSession, ExecPolicy, InferenceEngine};
use crate::faults;

/// The coalescing deadline for a micro-batch whose first request was
/// enqueued at `enqueued`, observed at `now`: the batch closes `max_wait`
/// after the request *entered the queue*, not after the shard popped it —
/// a request that already waited in the queue must not be charged a
/// second full window (clamped to `now` so an overdue batch still
/// collects whatever is already queued without waiting).
fn coalesce_deadline(enqueued: Instant, now: Instant, max_wait: Duration) -> Instant {
    (enqueued + max_wait).max(now)
}

/// Dynamic micro-batcher bounds (per shard).
#[derive(Clone, Copy, Debug)]
pub struct BatchingConfig {
    /// Maximum examples coalesced into one engine call.
    pub max_batch: usize,
    /// Maximum time a batch stays open waiting for more requests.
    pub max_wait: Duration,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// When and how the server degrades instead of rejecting (see the
/// module docs and [`ServerBuilder::brownout`]).
#[derive(Clone, Copy, Debug)]
pub struct BrownoutConfig {
    /// Queue depth at (or above) which shards enter brownout. The
    /// default is `usize::MAX`: depth-triggered brownout is opt-in.
    pub high_water: usize,
    /// Queue depth at (or below) which shards recover from a
    /// depth-triggered brownout — the hysteresis band `low_water..
    /// high_water` prevents flapping at the threshold.
    pub low_water: usize,
    /// Execution policy forced while browned out. The default,
    /// `Cascade(max_prob(1.0))`, serves every example from the gate
    /// member alone — the cheapest calibrated answer the ensemble can
    /// give.
    pub policy: ExecPolicy,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            high_water: usize::MAX,
            low_water: 0,
            policy: ExecPolicy::Cascade(CascadePolicy::max_prob(1.0)),
        }
    }
}

/// Why a request could not be served.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServeError {
    /// The submitted example does not match the ensemble's input
    /// geometry.
    BadExample {
        /// Human-readable detail.
        detail: String,
    },
    /// The bounded request queue is full: the server is admitting work
    /// faster than its shards drain it. Typed so callers can shed load /
    /// retry with backoff instead of growing an unbounded queue.
    Overloaded {
        /// Queue depth observed at rejection time (= the configured
        /// capacity).
        queue_depth: usize,
    },
    /// The server has shut down (or shut down before answering).
    Closed,
    /// The worker shard serving this request died (panicked) after
    /// dequeueing it — or every worker is dead with the restart budget
    /// spent — so no answer will ever arrive. Typed so a waiting client
    /// returns instead of blocking forever on a reply channel whose
    /// sender unwound.
    WorkerGone,
    /// The request's deadline passed before an answer was produced:
    /// either shed server-side while still queued (no eval FLOPs were
    /// spent on it), or observed client-side by
    /// [`PendingPrediction::wait`].
    DeadlineExceeded,
    /// [`PendingPrediction::wait_timeout`] elapsed. Unlike
    /// [`ServeError::DeadlineExceeded`] this says nothing about the
    /// request itself — it is still in flight and a later
    /// [`PendingPrediction::wait`] can still collect the answer.
    Timeout,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadExample { detail } => write!(f, "bad example: {detail}"),
            ServeError::Overloaded { queue_depth } => {
                write!(f, "server overloaded: request queue full at {queue_depth}")
            }
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::WorkerGone => {
                write!(f, "serving worker died before answering this request")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline passed before an answer was produced")
            }
            ServeError::Timeout => {
                write!(f, "wait timed out; the request is still in flight")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered request.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Final class probabilities for this example: the ensemble average,
    /// or the gate member's answer when the example exited a cascade
    /// early.
    pub probs: Vec<f32>,
    /// Arg-max label of [`Prediction::probs`].
    pub label: usize,
    /// Gate uncertainty in `[0, 1]` (`1 - confidence` under the scoring
    /// metric; [`crate::engine::Confidence::MaxProb`] over the ensemble
    /// average when no cascade is configured).
    pub uncertainty: f32,
    /// Whether this example ran the full ensemble (`true`) or exited a
    /// cascade early with the gate's answer (`false`). Always `true`
    /// outside cascade policies.
    pub escalated: bool,
    /// Whether this answer was produced under brownout: the shard forced
    /// the degradation policy ([`BrownoutConfig::policy`]) instead of
    /// the server's configured policy. Degraded answers trade ensemble
    /// quality for staying up; non-degraded answers are bitwise
    /// identical to direct engine evaluation.
    pub degraded: bool,
    /// End-to-end latency: submit to answer, including queueing and
    /// batching delay.
    pub latency: Duration,
    /// Size of the micro-batch this request was served in.
    pub batch: usize,
    /// Worker shard that served this request.
    pub shard: usize,
}

/// Counters one shard (or the whole server, aggregated) reports at
/// shutdown. Kept outside the worker threads, so they survive worker
/// panics and keep accumulating across a shard's respawned incarnations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered.
    pub requests: u64,
    /// Engine calls made (micro-batches executed).
    pub batches: u64,
    /// Largest micro-batch executed.
    pub max_batch_filled: usize,
    /// Requests that ran the full ensemble. Equals
    /// [`ServerStats::requests`] outside cascade policies; under a
    /// cascade, `requests - escalated` exited early on the gate alone.
    pub escalated: u64,
    /// Requests shed with [`ServeError::DeadlineExceeded`] while still
    /// queued — their deadline passed before any eval FLOPs were spent.
    /// Not counted in [`ServerStats::requests`].
    pub deadline_expired: u64,
    /// Requests answered under brownout ([`Prediction::degraded`]).
    pub degraded: u64,
}

impl ServerStats {
    /// Mean examples per engine call — the batching win over
    /// one-request-per-call serving.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Fraction of requests that exited a cascade early (0.0 with no
    /// traffic, and under non-cascade policies).
    pub fn early_exit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.requests - self.escalated) as f64 / self.requests as f64
        }
    }

    fn merge(&mut self, other: &ServerStats) {
        self.requests += other.requests;
        self.batches += other.batches;
        self.max_batch_filled = self.max_batch_filled.max(other.max_batch_filled);
        self.escalated += other.escalated;
        self.deadline_expired += other.deadline_expired;
        self.degraded += other.degraded;
    }
}

/// Per-shard counters as shared atomics (see [`ServerStats`] for field
/// meanings): written by whichever incarnation of the shard is alive,
/// snapshotted by [`Server::shutdown`].
#[derive(Default)]
struct ShardCounters {
    requests: AtomicU64,
    batches: AtomicU64,
    max_batch_filled: AtomicU64,
    escalated: AtomicU64,
    deadline_expired: AtomicU64,
    degraded: AtomicU64,
}

impl ShardCounters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch_filled: self.max_batch_filled.load(Ordering::Relaxed) as usize,
            escalated: self.escalated.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

/// What [`Server::shutdown`] returns: aggregate counters, the per-shard
/// breakdown, and the supervision/admission tallies.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Counters summed over all shards — including
    /// [`ServerStats::deadline_expired`] and [`ServerStats::degraded`],
    /// so operators read the fault-handling totals without walking the
    /// per-shard breakdown.
    pub aggregate: ServerStats,
    /// Counters per worker shard, in shard order. Counters live outside
    /// the worker threads: a shard that panicked keeps what it had
    /// counted, and its respawned incarnation adds to the same entry.
    pub per_shard: Vec<ServerStats>,
    /// Submissions rejected with [`ServeError::Overloaded`] over the
    /// server's lifetime.
    pub rejected: u64,
    /// Worker deaths (panics) over the server's lifetime.
    pub worker_panics: u64,
    /// Worker shards respawned by the supervisor after a panic (at most
    /// [`ServerBuilder::restart_budget`]).
    pub restarts: u64,
}

struct Request {
    /// `[1, C, H, W]` example.
    example: Tensor,
    enqueued: Instant,
    /// Answer-by time; past it the request is shed, not served.
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<Prediction, ServeError>>,
}

impl Request {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// The bounded MPMC request queue every shard pulls from. Hand-rolled on
/// `Mutex<VecDeque>` + `Condvar` (the workspace has no queue dependency):
/// admission is O(1) under one lock, `close` flips `open` so producers
/// are rejected while consumers drain what was already admitted.
///
/// Every lock acquisition recovers from poisoning: a worker that panics
/// while holding the lock must not cascade its panic into every other
/// shard and client. The state under the lock (a deque plus a flag) is
/// structurally valid at every point a panic can unwind through, so the
/// "poisoned" data is safe to keep serving from.
struct SharedQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
    rejected: AtomicU64,
}

struct QueueState {
    queue: VecDeque<Box<Request>>,
    open: bool,
}

impl SharedQueue {
    fn new(capacity: usize) -> Self {
        SharedQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(capacity.min(1024)),
                open: true,
            }),
            available: Condvar::new(),
            capacity,
            rejected: AtomicU64::new(0),
        }
    }

    /// Locks the queue state, recovering from a poisoned mutex (see the
    /// type-level docs for why that is sound here).
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admission control: typed rejection instead of unbounded growth.
    fn push(&self, request: Box<Request>) -> Result<(), ServeError> {
        let mut state = self.lock_state();
        if !state.open {
            return Err(ServeError::Closed);
        }
        if state.queue.len() >= self.capacity {
            let depth = state.queue.len();
            drop(state);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { queue_depth: depth });
        }
        state.queue.push_back(request);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a request is available. Returns `None` only when the
    /// queue is closed **and** fully drained — shutdown answers every
    /// admitted request.
    ///
    /// The [`faults::sites::QUEUE_POP`] failpoint fires here *while the
    /// lock is held*: an injected panic poisons the mutex and drops the
    /// popped request unanswered — the worst-case worker death.
    fn pop_blocking(&self) -> Option<Box<Request>> {
        let mut state = self.lock_state();
        loop {
            if let Some(r) = state.queue.pop_front() {
                faults::trigger(faults::sites::QUEUE_POP);
                return Some(r);
            }
            if !state.open {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking-ish pop with a deadline, used while a shard's batch
    /// is open: returns `None` on deadline or when the queue is closed
    /// and empty (the shard then flushes its open batch).
    fn pop_until(&self, deadline: Instant) -> Option<Box<Request>> {
        let mut state = self.lock_state();
        loop {
            if let Some(r) = state.queue.pop_front() {
                faults::trigger(faults::sites::QUEUE_POP);
                return Some(r);
            }
            if !state.open {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self
                .available
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    fn close(&self) {
        let mut state = self.lock_state();
        state.open = false;
        drop(state);
        self.available.notify_all();
    }

    /// Terminal failure path: closes the queue and answers everything
    /// still in it with [`ServeError::WorkerGone`]. Used when no worker
    /// remains to drain the queue — clients must fail fast, not hang.
    fn fail_pending(&self) {
        let drained: Vec<Box<Request>> = {
            let mut state = self.lock_state();
            state.open = false;
            state.queue.drain(..).collect()
        };
        self.available.notify_all();
        for r in drained {
            let _ = r.reply.send(Err(ServeError::WorkerGone));
        }
    }

    fn depth(&self) -> usize {
        self.lock_state().queue.len()
    }
}

/// Everything the worker shards, the supervisor, and the client handles
/// share: the plan, the queue, the per-shard counters, the serving
/// configuration, and the control flags.
struct Shared {
    plan: Arc<EnginePlan>,
    queue: SharedQueue,
    stats: Vec<ShardCounters>,
    policy: ExecPolicy,
    batching: BatchingConfig,
    brownout: BrownoutConfig,
    /// Set by [`Server::shutdown`]/drop: the supervisor stops respawning.
    shutting_down: AtomicBool,
    /// Current brownout state (hysteresis lives in
    /// [`brownout_decision`]).
    brownout_active: AtomicBool,
    /// Sticky: the restart budget is spent; brownout until shutdown.
    budget_exhausted: AtomicBool,
    restarts: AtomicU64,
    worker_panics: AtomicU64,
}

/// Brownout hysteresis, evaluated once per micro-batch: enter at
/// `high_water` (or immediately when the restart budget is spent),
/// recover only once depth has fallen to `low_water`.
fn brownout_decision(shared: &Shared) -> bool {
    if shared.budget_exhausted.load(Ordering::Relaxed) {
        shared.brownout_active.store(true, Ordering::Relaxed);
        return true;
    }
    let depth = shared.queue.depth();
    if shared.brownout_active.load(Ordering::Relaxed) {
        if depth <= shared.brownout.low_water {
            shared.brownout_active.store(false, Ordering::Relaxed);
            false
        } else {
            true
        }
    } else if depth >= shared.brownout.high_water {
        shared.brownout_active.store(true, Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// A handle for submitting requests; cheap to clone and send across
/// threads.
#[derive(Clone)]
pub struct ServeClient {
    shared: Arc<Shared>,
    input: InputSpec,
    default_deadline: Option<Duration>,
}

impl ServeClient {
    /// Submits one example — `[C, H, W]` or `[1, C, H, W]` — and returns
    /// a handle to await its prediction. Applies the server's
    /// [`ServerBuilder::default_deadline`], if one is configured.
    ///
    /// Examples are validated at admission: a NaN or infinite value would
    /// flow through softmax into probabilities, argmax, and cascade
    /// confidence as silent garbage, so non-finite data is rejected here
    /// with a typed error instead. The finiteness check is fused into the
    /// one copy each request pays (the example is staged into its queued
    /// `[1, C, H, W]` tensor), not a second traversal.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadExample`] when the shape does not match the
    /// ensemble input or the data contains a non-finite value,
    /// [`ServeError::Overloaded`] when the bounded queue is full,
    /// [`ServeError::Closed`] when the server is gone.
    pub fn submit(&self, example: &Tensor) -> Result<PendingPrediction, ServeError> {
        self.submit_inner(example, self.default_deadline)
    }

    /// [`ServeClient::submit`] with an explicit latency budget,
    /// overriding any server default. Once `deadline` has elapsed the
    /// request is shed in-queue (server-side) and
    /// [`PendingPrediction::wait`] stops blocking (client-side) — both
    /// with [`ServeError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::submit`].
    pub fn submit_with_deadline(
        &self,
        example: &Tensor,
        deadline: Duration,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit_inner(example, Some(deadline))
    }

    fn submit_inner(
        &self,
        example: &Tensor,
        deadline: Option<Duration>,
    ) -> Result<PendingPrediction, ServeError> {
        let want = [self.input.channels, self.input.height, self.input.width];
        let dims = example.shape().dims();
        let ok = dims == want || (dims.len() == 4 && dims[0] == 1 && dims[1..] == want);
        if !ok {
            return Err(ServeError::BadExample {
                detail: format!(
                    "expected [{}, {}, {}] (or leading batch dim of 1), got {}",
                    want[0],
                    want[1],
                    want[2],
                    example.shape()
                ),
            });
        }
        let mut bad: Option<(usize, f32)> = None;
        let data: Vec<f32> = example
            .data()
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if bad.is_none() && !v.is_finite() {
                    bad = Some((i, v));
                }
                v
            })
            .collect();
        if let Some((i, v)) = bad {
            return Err(ServeError::BadExample {
                detail: format!("non-finite value {v} at flat index {i}"),
            });
        }
        let example = Tensor::from_vec(
            [1, self.input.channels, self.input.height, self.input.width],
            data,
        );
        let now = Instant::now();
        let deadline = deadline.map(|d| now + d);
        let (reply, rx) = mpsc::channel();
        let request = Box::new(Request {
            example,
            enqueued: now,
            deadline,
            reply,
        });
        self.shared.queue.push(request)?;
        Ok(PendingPrediction { rx, deadline })
    }
}

/// A submitted request awaiting its answer.
pub struct PendingPrediction {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
    deadline: Option<Instant>,
}

impl PendingPrediction {
    /// Blocks until the prediction arrives — or, for a request with a
    /// deadline, until the deadline passes (whichever comes first).
    ///
    /// Graceful shutdown (and even dropping the server) drains and
    /// answers every admitted request first, so this does not error on a
    /// normal shutdown race.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerGone`] when the worker shard serving this
    /// request panicked before replying (or every worker is dead);
    /// [`ServeError::DeadlineExceeded`] when the request's deadline
    /// passed without an answer — whether observed here or shed
    /// server-side while still queued.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        let Some(deadline) = self.deadline else {
            return match self.rx.recv() {
                Ok(outcome) => outcome,
                Err(_) => Err(ServeError::WorkerGone),
            };
        };
        loop {
            let now = Instant::now();
            if now >= deadline {
                // One last look: an answer that arrived right at the
                // wire still counts.
                return match self.rx.try_recv() {
                    Ok(outcome) => outcome,
                    Err(mpsc::TryRecvError::Disconnected) => Err(ServeError::WorkerGone),
                    Err(mpsc::TryRecvError::Empty) => Err(ServeError::DeadlineExceeded),
                };
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(outcome) => return outcome,
                Err(mpsc::RecvTimeoutError::Disconnected) => return Err(ServeError::WorkerGone),
                Err(mpsc::RecvTimeoutError::Timeout) => {} // re-check at the deadline
            }
        }
    }

    /// Waits up to `timeout` for the answer *without* giving up the
    /// slot: on [`ServeError::Timeout`] the request is still in flight
    /// and a later [`PendingPrediction::wait`] (or another
    /// `wait_timeout`) still yields the answer. Useful for polling a
    /// pending request from a select-style loop.
    ///
    /// # Errors
    ///
    /// [`ServeError::Timeout`] when `timeout` elapses first;
    /// [`ServeError::WorkerGone`] / [`ServeError::DeadlineExceeded`] as
    /// in [`PendingPrediction::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Prediction, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::WorkerGone),
        }
    }
}

/// Configures and starts a [`Server`]: shard count, queue bound, batching
/// window, execution policy, deadlines, supervision, and brownout — all
/// over one shared [`EnginePlan`].
pub struct ServerBuilder {
    plan: Arc<EnginePlan>,
    policy: ExecPolicy,
    shards: usize,
    queue_capacity: usize,
    batching: BatchingConfig,
    default_deadline: Option<Duration>,
    restart_budget: u32,
    restart_backoff: Duration,
    brownout: BrownoutConfig,
}

impl ServerBuilder {
    /// Starts from a shared plan with 1 shard, a 1024-request queue
    /// bound, the default batching window, the plan's default policy, no
    /// default deadline, a restart budget of 4 with 10ms base backoff,
    /// and depth-triggered brownout disabled.
    pub fn new(plan: Arc<EnginePlan>) -> Self {
        let policy = plan.default_policy();
        ServerBuilder {
            plan,
            policy,
            shards: 1,
            queue_capacity: 1024,
            batching: BatchingConfig::default(),
            default_deadline: None,
            restart_budget: 4,
            restart_backoff: Duration::from_millis(10),
            brownout: BrownoutConfig::default(),
        }
    }

    /// Number of worker shards, each owning an [`EngineSession`] over the
    /// shared plan (clamped to at least 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Bound on queued (admitted, not yet batched) requests; submissions
    /// beyond it are rejected with [`ServeError::Overloaded`] (clamped to
    /// at least 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Per-shard micro-batching bounds.
    pub fn batching(mut self, cfg: BatchingConfig) -> Self {
        self.batching = cfg;
        self
    }

    /// Execution policy every shard's session runs.
    pub fn policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Latency budget applied to every [`ServeClient::submit`] that does
    /// not carry its own ([`ServeClient::submit_with_deadline`] always
    /// wins).
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// How many worker deaths the supervisor will repair over the
    /// server's lifetime. Past the budget no more respawns happen:
    /// surviving shards serve browned-out, and if none survive, pending
    /// requests fail fast and the queue closes.
    pub fn restart_budget(mut self, budget: u32) -> Self {
        self.restart_budget = budget;
        self
    }

    /// Base delay before respawning a dead worker; doubles per restart
    /// (capped at 1s). Backoff keeps a crash-looping plan from burning
    /// the whole budget in microseconds.
    pub fn restart_backoff(mut self, backoff: Duration) -> Self {
        self.restart_backoff = backoff;
        self
    }

    /// Enables/configures brownout degradation (see [`BrownoutConfig`];
    /// `high_water` and `low_water` are clamped so `low_water <
    /// high_water`).
    pub fn brownout(mut self, cfg: BrownoutConfig) -> Self {
        self.brownout = BrownoutConfig {
            low_water: cfg.low_water.min(cfg.high_water.saturating_sub(1)),
            ..cfg
        };
        self
    }

    /// Starts the worker shards plus their supervisor and returns the
    /// running server.
    pub fn start(self) -> Server {
        let shards = self.shards;
        let shared = Arc::new(Shared {
            queue: SharedQueue::new(self.queue_capacity),
            stats: (0..shards).map(|_| ShardCounters::default()).collect(),
            policy: self.policy,
            batching: self.batching,
            brownout: self.brownout,
            shutting_down: AtomicBool::new(false),
            brownout_active: AtomicBool::new(false),
            budget_exhausted: AtomicBool::new(false),
            restarts: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            plan: self.plan,
        });
        let input = shared.plan.input_spec();
        let (events_tx, events_rx) = mpsc::channel();
        let handles: Vec<Option<JoinHandle<()>>> = (0..shards)
            .map(|shard| Some(spawn_worker(shard, &shared, events_tx.clone())))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            let budget = self.restart_budget;
            let backoff = self.restart_backoff;
            std::thread::Builder::new()
                .name("mn-serve-supervisor".into())
                .spawn(move || {
                    supervisor_loop(shared, events_rx, events_tx, handles, budget, backoff)
                })
                // mn-lint: allow(no-panic-in-serve, reason = "spawn fails only on OS thread exhaustion at server construction — before any request is accepted there is no degraded mode to fall back to, and the panic propagates to the caller of Server::start")
                .expect("supervisor thread spawns")
        };
        Server {
            client: ServeClient {
                shared: Arc::clone(&shared),
                input,
                default_deadline: self.default_deadline,
            },
            shared,
            supervisor: Some(supervisor),
        }
    }
}

/// A running ensemble server: N supervised worker shards — each an
/// [`EngineSession`] over one shared [`EnginePlan`] — pulling from one
/// bounded MPMC request queue. See the module docs for the full picture.
pub struct Server {
    client: ServeClient,
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Entry point of the builder API (see [`ServerBuilder`]).
    pub fn builder(plan: Arc<EnginePlan>) -> ServerBuilder {
        ServerBuilder::new(plan)
    }

    /// Compatibility constructor over the pre-split API: consumes an
    /// [`InferenceEngine`], inherits its policy, and serves its plan with
    /// one shard. Equivalent to
    /// `Server::builder(engine.into_plan()).batching(cfg).start()`.
    pub fn start(engine: InferenceEngine, cfg: BatchingConfig) -> Server {
        let policy = engine.policy();
        Server::builder(engine.into_plan())
            .policy(policy)
            .batching(cfg)
            .start()
    }

    /// A cloneable submission handle for client threads.
    pub fn client(&self) -> ServeClient {
        self.client.clone()
    }

    /// Submits one example on the server's own handle (see
    /// [`ServeClient::submit`]).
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::submit`].
    pub fn submit(&self, example: &Tensor) -> Result<PendingPrediction, ServeError> {
        self.client.submit(example)
    }

    /// Submits with an explicit latency budget (see
    /// [`ServeClient::submit_with_deadline`]).
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::submit`].
    pub fn submit_with_deadline(
        &self,
        example: &Tensor,
        deadline: Duration,
    ) -> Result<PendingPrediction, ServeError> {
        self.client.submit_with_deadline(example, deadline)
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shared.stats.len()
    }

    /// Requests currently admitted but not yet pulled into a micro-batch.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Whether shards are currently serving browned-out answers.
    pub fn brownout_active(&self) -> bool {
        self.shared.brownout_active.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: closes the queue to new submissions (clients
    /// observe [`ServeError::Closed`]), drains every request already
    /// admitted — each receives its answer — then joins the supervisor
    /// and shards and returns per-shard plus aggregate counters.
    ///
    /// A shard that panicked instead of exiting cleanly does not panic
    /// the shutdown: it is counted in [`ServerReport::worker_panics`]
    /// (and [`ServerReport::restarts`] if the supervisor repaired it),
    /// and its counters — kept outside the thread — survive into the
    /// report.
    pub fn shutdown(mut self) -> ServerReport {
        self.stop();
        self.report()
    }

    fn stop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Relaxed);
        self.shared.queue.close();
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
    }

    fn report(&self) -> ServerReport {
        let per_shard: Vec<ServerStats> = self.shared.stats.iter().map(|c| c.snapshot()).collect();
        let mut aggregate = ServerStats::default();
        for s in &per_shard {
            aggregate.merge(s);
        }
        ServerReport {
            aggregate,
            per_shard,
            rejected: self.shared.queue.rejected.load(Ordering::Relaxed),
            worker_panics: self.shared.worker_panics.load(Ordering::Relaxed),
            restarts: self.shared.restarts.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

struct WorkerEvent {
    shard: usize,
    panicked: bool,
}

/// Spawns one worker shard: a fresh [`EngineSession`] over the shared
/// plan, running [`shard_loop`] under `catch_unwind` so its death is an
/// event for the supervisor, never a silent capacity loss.
fn spawn_worker(
    shard: usize,
    shared: &Arc<Shared>,
    events: mpsc::Sender<WorkerEvent>,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("mn-serve-{shard}"))
        .spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut session = shared.plan.session();
                session.set_policy(shared.policy);
                shard_loop(shard, session, &shared);
            }));
            let _ = events.send(WorkerEvent {
                shard,
                panicked: outcome.is_err(),
            });
        })
        // mn-lint: allow(no-panic-in-serve, reason = "spawn fails only on OS thread exhaustion; the supervisor calling this respawn already treats a panicking respawn path as a dead worker and re-enters backoff, so panicking here cannot wedge serving")
        .expect("serving worker spawns")
}

/// Exponential backoff before the `attempt`-th respawn: `base * 2^n`,
/// capped at 1s.
fn restart_delay(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32 << attempt.min(20))
        .min(Duration::from_secs(1))
}

/// The supervisor: reaps worker exits, respawns panicked shards within
/// the restart budget (with exponential backoff), flips the sticky
/// brownout once the budget is spent, and — if no worker remains to
/// drain the queue — fails pending requests fast instead of letting
/// clients hang. Exits once every worker has exited, joining them all.
fn supervisor_loop(
    shared: Arc<Shared>,
    events_rx: mpsc::Receiver<WorkerEvent>,
    events_tx: mpsc::Sender<WorkerEvent>,
    mut handles: Vec<Option<JoinHandle<()>>>,
    budget: u32,
    backoff: Duration,
) {
    let mut live = handles.iter().filter(|h| h.is_some()).count();
    let mut attempts = 0u32;
    while live > 0 {
        let Ok(event) = events_rx.recv() else { break };
        if let Some(h) = handles[event.shard].take() {
            let _ = h.join();
        }
        live -= 1;
        if !event.panicked {
            continue; // clean exit: queue closed and drained
        }
        shared.worker_panics.fetch_add(1, Ordering::Relaxed);
        if shared.shutting_down.load(Ordering::Relaxed) {
            continue;
        }
        if attempts >= budget {
            shared.budget_exhausted.store(true, Ordering::Relaxed);
            shared.brownout_active.store(true, Ordering::Relaxed);
            if live == 0 {
                shared.queue.fail_pending();
            }
            continue;
        }
        let delay = restart_delay(backoff, attempts);
        attempts += 1;
        std::thread::sleep(delay);
        if shared.shutting_down.load(Ordering::Relaxed) {
            continue;
        }
        handles[event.shard] = Some(spawn_worker(event.shard, &shared, events_tx.clone()));
        live += 1;
        shared.restarts.fetch_add(1, Ordering::Relaxed);
    }
    // All workers are gone. If the queue still holds requests (e.g. the
    // last worker died mid-drain), nothing will ever serve them.
    shared.queue.fail_pending();
    for h in handles.into_iter().flatten() {
        let _ = h.join();
    }
}

/// Sheds one expired request: typed error, no eval FLOPs.
fn shed_expired(request: &Request, stats: &ShardCounters) {
    stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
    let _ = request.reply.send(Err(ServeError::DeadlineExceeded));
}

// mn-lint: hot-path
fn shard_loop(shard: usize, mut session: EngineSession, shared: &Shared) {
    let cfg = shared.batching;
    let max_batch = cfg.max_batch.max(1);
    let input = session.plan().input_spec();
    let row = input.channels * input.height * input.width;
    let k = session.plan().num_classes();
    let mut ws = Workspace::new();
    let stats = &shared.stats[shard];
    // `pop_blocking` returns None only when the queue is closed *and*
    // drained, so every admitted request is answered before exit.
    'serve: while let Some(first) = shared.queue.pop_blocking() {
        let now = Instant::now();
        // In-queue deadline shedding: a request that expired while
        // queued gets its typed error before any eval work is done.
        if first.expired(now) {
            shed_expired(&first, stats);
            continue 'serve;
        }
        // The coalescing window opened when `first` was *enqueued*, not
        // now: a request that already waited out its window in the queue
        // flushes immediately instead of paying `max_wait` twice. The
        // window also never extends past the earliest deadline admitted
        // into the batch.
        let mut close = coalesce_deadline(first.enqueued, now, cfg.max_wait);
        if let Some(d) = first.deadline {
            close = close.min(d);
        }
        // mn-lint: allow(hot-path-alloc, reason = "one Vec per micro-batch, capacity <= max_batch; the batch is the product of this loop iteration, not steady-state churn, and it is consumed (into_iter) before the next pop")
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match shared.queue.pop_until(close) {
                Some(r) => {
                    if r.expired(Instant::now()) {
                        shed_expired(&r, stats);
                        continue;
                    }
                    if let Some(d) = r.deadline {
                        close = close.min(d);
                    }
                    batch.push(r);
                }
                None => break,
            }
        }

        faults::trigger(faults::sites::WORKER_EVAL);

        // One engine call for the whole micro-batch — under the brownout
        // policy when the server is shedding quality to stay up.
        let degraded = brownout_decision(shared);
        let b = batch.len();
        let mut xb = ws.acquire_uninit([b, input.channels, input.height, input.width]);
        for (i, req) in batch.iter().enumerate() {
            xb.data_mut()[i * row..(i + 1) * row].copy_from_slice(req.example.data());
        }
        let scored = if degraded {
            session.predict_scored_with(&xb, shared.brownout.policy)
        } else {
            session.predict_scored(&xb)
        };
        ws.release(xb);
        let answered = Instant::now();
        let labels = ops::argmax_rows(&scored.probs);
        for (i, req) in batch.into_iter().enumerate() {
            let prediction = Prediction {
                // mn-lint: allow(hot-path-alloc, reason = "the probs row is handed across the reply channel and must outlive the workspace-owned batch tensor; one k-float Vec per request is the response payload itself")
                probs: scored.probs.data()[i * k..(i + 1) * k].to_vec(),
                label: labels[i],
                uncertainty: scored.uncertainty[i],
                escalated: scored.escalated[i],
                degraded,
                latency: answered - req.enqueued,
                batch: b,
                shard,
            };
            // A requester that gave up (dropped its handle) is not an
            // error for the server.
            let _ = req.reply.send(Ok(prediction));
        }
        stats.requests.fetch_add(b as u64, Ordering::Relaxed);
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats
            .max_batch_filled
            .fetch_max(b as u64, Ordering::Relaxed);
        stats
            .escalated
            .fetch_add(scored.num_escalated() as u64, Ordering::Relaxed);
        if degraded {
            stats.degraded.fetch_add(b as u64, Ordering::Relaxed);
        }
    }
    faults::trigger(faults::sites::SHUTDOWN_DRAIN);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultAction;
    use crate::member::EnsembleMember;
    use mn_nn::arch::{Architecture, InputSpec};
    use mn_nn::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan() -> Arc<EnginePlan> {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![6]);
        let members: Vec<EnsembleMember> = (0..2)
            .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
            .collect();
        EnginePlan::new(members, 8).unwrap().into_shared()
    }

    fn engine() -> InferenceEngine {
        InferenceEngine::from_plan(plan())
    }

    #[test]
    fn serves_single_requests_with_latency_and_stats() {
        let server = Server::start(engine(), BatchingConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut pending = Vec::new();
        for _ in 0..5 {
            let x = Tensor::randn([1, 2, 2], 1.0, &mut rng);
            pending.push(server.submit(&x).unwrap());
        }
        for p in pending {
            let got = p.wait().unwrap();
            assert_eq!(got.probs.len(), 3);
            assert!(got.label < 3);
            assert!(got.batch >= 1);
            assert_eq!(got.shard, 0, "single-shard server has one shard id");
            assert!(!got.degraded, "healthy server serves full quality");
            assert!(got.latency > Duration::ZERO);
            let sum: f32 = got.probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 5);
        assert!(report.aggregate.batches >= 1 && report.aggregate.batches <= 5);
        assert!(report.aggregate.mean_batch() >= 1.0);
        assert_eq!(report.per_shard.len(), 1);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.worker_panics, 0);
        assert_eq!(report.aggregate.deadline_expired, 0);
        assert_eq!(report.aggregate.degraded, 0);
    }

    #[test]
    fn rejects_wrong_geometry_eagerly() {
        let server = Server::start(engine(), BatchingConfig::default());
        let bad = Tensor::zeros([2, 2, 2]);
        assert!(matches!(
            server.submit(&bad),
            Err(ServeError::BadExample { .. })
        ));
        let batch_of_two = Tensor::zeros([2, 1, 2, 2]);
        assert!(matches!(
            server.submit(&batch_of_two),
            Err(ServeError::BadExample { .. })
        ));
        server.shutdown();
    }

    #[test]
    fn accepts_three_d_and_unit_batch_examples() {
        let server = Server::start(engine(), BatchingConfig::default());
        let a = server.submit(&Tensor::zeros([1, 2, 2])).unwrap();
        let b = server.submit(&Tensor::zeros([1, 1, 2, 2])).unwrap();
        let (pa, pb) = (a.wait().unwrap(), b.wait().unwrap());
        assert_eq!(pa.probs, pb.probs, "same example, same answer");
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_outstanding_clients() {
        let server = Server::start(engine(), BatchingConfig::default());
        let client = server.client();
        server.shutdown();
        assert!(matches!(
            client.submit(&Tensor::zeros([1, 2, 2])),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn micro_batching_coalesces_under_load() {
        // A generous wait window plus a burst submitted before the first
        // answer can complete must produce fewer engine calls than
        // requests.
        let server = Server::start(
            engine(),
            BatchingConfig {
                max_batch: 32,
                max_wait: Duration::from_millis(50),
            },
        );
        let mut pending = Vec::new();
        for _ in 0..16 {
            pending.push(server.submit(&Tensor::zeros([1, 2, 2])).unwrap());
        }
        for p in pending {
            p.wait().unwrap();
        }
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 16);
        assert!(
            report.aggregate.batches < 16,
            "expected coalescing, got {} batches",
            report.aggregate.batches
        );
        assert!(report.aggregate.max_batch_filled > 1);
    }

    #[test]
    fn sharded_server_answers_every_request() {
        let server = Server::builder(plan())
            .shards(3)
            .batching(BatchingConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(200),
            })
            .start();
        assert_eq!(server.num_shards(), 3);
        let mut rng = StdRng::seed_from_u64(2);
        let pending: Vec<_> = (0..24)
            .map(|_| {
                let x = Tensor::randn([1, 2, 2], 1.0, &mut rng);
                server.submit(&x).unwrap()
            })
            .collect();
        for p in pending {
            let got = p.wait().unwrap();
            assert!(got.shard < 3);
        }
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 24);
        assert_eq!(report.per_shard.len(), 3);
        let summed: u64 = report.per_shard.iter().map(|s| s.requests).sum();
        assert_eq!(summed, 24, "per-shard stats must sum to the aggregate");
    }

    #[test]
    fn overload_rejects_typed_then_recovers() {
        // Tiny queue, small batches: flooding submits must hit the bound
        // with a typed Overloaded error...
        let server = Server::builder(plan())
            .shards(1)
            .queue_capacity(2)
            .batching(BatchingConfig {
                max_batch: 2,
                max_wait: Duration::ZERO,
            })
            .start();
        let x = Tensor::zeros([1, 2, 2]);
        let mut pending = Vec::new();
        let mut overloaded = None;
        for _ in 0..100_000 {
            match server.submit(&x) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded { queue_depth }) => {
                    overloaded = Some(queue_depth);
                    break;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        let depth = overloaded.expect("a tiny queue must overflow under a submit flood");
        assert_eq!(depth, 2, "rejection reports the configured bound");
        // ...every admitted request still gets its answer...
        for p in pending {
            p.wait().expect("admitted requests are served");
        }
        // ...and the server recovers: later submits succeed again.
        let recovered = server
            .submit(&x)
            .expect("server accepts again once the queue drains");
        recovered.wait().unwrap();
        let report = server.shutdown();
        assert!(report.rejected >= 1, "rejections are counted");
    }

    #[test]
    fn panicking_worker_neither_poisons_queue_nor_hangs_clients() {
        // Two shards; an injected panic at the queue-pop failpoint kills
        // whichever shard dequeues next *while that shard holds the
        // queue lock* — the worst case for mutex poisoning.
        let scope = faults::scope();
        let server = Server::builder(plan())
            .shards(2)
            .restart_backoff(Duration::from_millis(1))
            .batching(BatchingConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(200),
            })
            .start();
        let x = Tensor::zeros([1, 2, 2]);
        // Sanity: the server works before the injected failure.
        server.submit(&x).unwrap().wait().unwrap();

        scope.enable_times(faults::sites::QUEUE_POP, FaultAction::Panic, 1);
        let orphan = server.submit(&x).unwrap();
        // The orphaned request returns a typed error instead of blocking
        // forever on a reply that can never come.
        assert_eq!(orphan.wait().unwrap_err(), ServeError::WorkerGone);

        // The queue mutex was poisoned by the dying worker, but both the
        // client path (submit locks it) and the other shards recover:
        // the server keeps answering.
        for _ in 0..8 {
            let got = server
                .submit(&x)
                .expect("submits succeed after a worker death")
                .wait()
                .expect("remaining shards keep serving");
            assert_eq!(got.probs.len(), 3);
        }
        // Shutdown reports the death instead of re-panicking the caller,
        // and the counters — kept outside the dead thread — survive.
        let report = server.shutdown();
        assert_eq!(report.worker_panics, 1);
        assert!(report.restarts <= 1, "at most one repair for one death");
        assert_eq!(report.per_shard.len(), 2);
        assert!(report.aggregate.requests >= 9);
    }

    #[test]
    fn supervisor_respawns_dead_worker_and_keeps_serving() {
        // Single shard: service after the panic *proves* the respawn —
        // there is no surviving shard to hide behind.
        let scope = faults::scope();
        let server = Server::builder(plan())
            .shards(1)
            .restart_backoff(Duration::from_millis(1))
            .start();
        let x = Tensor::zeros([1, 2, 2]);
        server.submit(&x).unwrap().wait().unwrap();

        scope.enable_times(faults::sites::QUEUE_POP, FaultAction::Panic, 1);
        let orphan = server.submit(&x).unwrap();
        assert_eq!(orphan.wait().unwrap_err(), ServeError::WorkerGone);

        for _ in 0..4 {
            server
                .submit(&x)
                .expect("queue stays open through the respawn")
                .wait()
                .expect("the respawned shard serves");
        }
        let report = server.shutdown();
        assert_eq!(report.worker_panics, 1);
        assert_eq!(report.restarts, 1);
        assert_eq!(report.per_shard.len(), 1);
        assert!(
            report.per_shard[0].requests >= 5,
            "counters accumulate across shard incarnations, got {:?}",
            report.per_shard[0]
        );
    }

    #[test]
    fn exhausted_restart_budget_fails_pending_fast() {
        // Budget 0: the one worker dies and is never repaired. Pending
        // requests must fail with typed errors — no client hangs — and
        // the queue closes to new submissions.
        let scope = faults::scope();
        scope.enable_times(faults::sites::QUEUE_POP, FaultAction::Panic, 1);
        let server = Server::builder(plan()).shards(1).restart_budget(0).start();
        let x = Tensor::zeros([1, 2, 2]);
        let p1 = server.submit(&x).unwrap();
        // p2 races the supervisor's fail-fast: admitted (then failed) or
        // rejected at the closed queue — both are typed, neither hangs.
        match server.submit(&x) {
            Ok(p2) => assert_eq!(p2.wait().unwrap_err(), ServeError::WorkerGone),
            Err(ServeError::Closed) => {}
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        assert_eq!(p1.wait().unwrap_err(), ServeError::WorkerGone);
        // The queue eventually closes to new work.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match server.submit(&x) {
                Err(ServeError::Closed) => break,
                Ok(p) => assert_eq!(p.wait().unwrap_err(), ServeError::WorkerGone),
                Err(e) => panic!("unexpected submit error: {e}"),
            }
            assert!(Instant::now() < deadline, "queue never closed");
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = server.shutdown();
        assert_eq!(report.worker_panics, 1);
        assert_eq!(report.restarts, 0);
    }

    #[test]
    fn coalesce_deadline_anchors_at_enqueue_time() {
        let t0 = Instant::now();
        let wait = Duration::from_millis(10);
        // Fresh request: the window runs from its enqueue time.
        assert_eq!(coalesce_deadline(t0, t0, wait), t0 + wait);
        // Popped mid-window: the remaining window, not a fresh one.
        let now = t0 + Duration::from_millis(4);
        assert_eq!(coalesce_deadline(t0, now, wait), t0 + wait);
        // Popped after the window already expired in the queue: flush
        // now, never wait again.
        let late = t0 + Duration::from_millis(25);
        assert_eq!(coalesce_deadline(t0, late, wait), late);
    }

    #[test]
    fn batching_deadline_does_not_double_charge_queued_requests() {
        // Regression: the deadline used to be `Instant::now() + max_wait`
        // at *pop* time, so a request that already sat in the queue paid
        // its queue wait plus a second full window. Stall the (single)
        // worker's first eval long enough for requests to age in the
        // queue, then check the aged request is answered within ~one
        // window of its submit, not two.
        let scope = faults::scope();
        let max_wait = Duration::from_millis(300);
        scope.enable_times(
            faults::sites::WORKER_EVAL,
            FaultAction::Stall(Duration::from_millis(250)),
            1,
        );
        let server = Server::builder(plan())
            .shards(1)
            .batching(BatchingConfig {
                max_batch: 2,
                max_wait,
            })
            .start();
        let x = Tensor::zeros([1, 2, 2]);
        // r1 is popped immediately; r2 fills its batch (max_batch 2),
        // whose eval then stalls 250ms while r3 ages in the queue.
        let r1 = server.submit(&x).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let r2 = server.submit(&x).unwrap();
        let r3 = server.submit(&x).unwrap();
        // After the stall: r3 opens the next batch alone at ~250ms of
        // age — its window expired in the queue, so it must flush nearly
        // immediately. The old code waited a fresh 300ms window on top
        // (~570ms total latency).
        let _ = r1.wait().unwrap();
        let _ = r2.wait().unwrap();
        let p3 = r3.wait().unwrap();
        assert!(
            p3.latency < Duration::from_millis(450),
            "queued request was charged a second window: {:?}",
            p3.latency
        );
        server.shutdown();
    }

    #[test]
    fn expired_requests_are_shed_before_eval() {
        // Stall the worker's first eval; a deadline request aging in the
        // queue behind it must be shed with DeadlineExceeded — before
        // any eval FLOPs are spent on it — and counted.
        let scope = faults::scope();
        scope.enable_times(
            faults::sites::WORKER_EVAL,
            FaultAction::Stall(Duration::from_millis(150)),
            1,
        );
        let server = Server::builder(plan())
            .shards(1)
            .batching(BatchingConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
            })
            .start();
        let x = Tensor::zeros([1, 2, 2]);
        let r0 = server.submit(&x).unwrap();
        let r1 = server
            .submit_with_deadline(&x, Duration::from_millis(10))
            .unwrap();
        assert_eq!(r1.wait().unwrap_err(), ServeError::DeadlineExceeded);
        r0.wait().expect("the undeadlined request is served");
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 1);
        assert_eq!(report.aggregate.deadline_expired, 1);
        let per_shard: u64 = report.per_shard.iter().map(|s| s.deadline_expired).sum();
        assert_eq!(per_shard, report.aggregate.deadline_expired);
    }

    #[test]
    fn default_deadline_applies_to_plain_submits() {
        let scope = faults::scope();
        scope.enable_times(
            faults::sites::WORKER_EVAL,
            FaultAction::Stall(Duration::from_millis(150)),
            1,
        );
        let server = Server::builder(plan())
            .shards(1)
            .default_deadline(Duration::from_millis(10))
            .batching(BatchingConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
            })
            .start();
        let x = Tensor::zeros([1, 2, 2]);
        // Occupy the worker so the next submit ages past its default
        // deadline in the queue.
        let r0 = server.submit(&x).unwrap();
        let r1 = server.submit(&x).unwrap();
        assert_eq!(r1.wait().unwrap_err(), ServeError::DeadlineExceeded);
        // r0 carried the default deadline too and the stall outlives it.
        assert_eq!(r0.wait().unwrap_err(), ServeError::DeadlineExceeded);
        server.shutdown();
    }

    #[test]
    fn coalescing_never_holds_batch_past_earliest_deadline() {
        // A long batching window (500ms) must be cut short by an
        // admitted request's much nearer deadline: the whole batch
        // flushes at ~the deadline, not at the window.
        let server = Server::builder(plan())
            .shards(1)
            .batching(BatchingConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(500),
            })
            .start();
        let x = Tensor::zeros([1, 2, 2]);
        let t0 = Instant::now();
        let slow = server.submit(&x).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let _hurried = server.submit_with_deadline(&x, Duration::from_millis(40));
        let got = slow.wait().unwrap();
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(300),
            "deadline did not pull the batch close in: {elapsed:?} (latency {:?})",
            got.latency
        );
        server.shutdown();
    }

    #[test]
    fn wait_timeout_leaves_answer_claimable() {
        let scope = faults::scope();
        scope.enable_times(
            faults::sites::WORKER_EVAL,
            FaultAction::Stall(Duration::from_millis(120)),
            1,
        );
        let server = Server::builder(plan()).shards(1).start();
        let p = server.submit(&Tensor::zeros([1, 2, 2])).unwrap();
        // The stalled worker cannot answer within 5ms...
        assert_eq!(
            p.wait_timeout(Duration::from_millis(5)).unwrap_err(),
            ServeError::Timeout
        );
        // ...but the timeout consumed nothing: the answer still arrives.
        let got = p.wait().expect("answer remains claimable after a timeout");
        assert_eq!(got.probs.len(), 3);
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 1);
    }

    #[test]
    fn brownout_degrades_under_pressure_and_recovers() {
        // Stall the first eval so a backlog builds past the high-water
        // mark: subsequent batches must be served degraded (gate-only)
        // until the queue drains to the low-water mark, then recover.
        let scope = faults::scope();
        scope.enable_times(
            faults::sites::WORKER_EVAL,
            FaultAction::Stall(Duration::from_millis(100)),
            1,
        );
        let server = Server::builder(plan())
            .shards(1)
            .brownout(BrownoutConfig {
                high_water: 4,
                low_water: 1,
                ..BrownoutConfig::default()
            })
            .batching(BatchingConfig {
                max_batch: 2,
                max_wait: Duration::from_millis(5),
            })
            .start();
        let x = Tensor::zeros([1, 2, 2]);
        let pending: Vec<_> = (0..10).map(|_| server.submit(&x).unwrap()).collect();
        let mut degraded = 0;
        let mut full = 0;
        for p in pending {
            let got = p.wait().unwrap();
            if got.degraded {
                degraded += 1;
            } else {
                full += 1;
            }
        }
        assert!(
            degraded > 0,
            "backlog past high water must trigger brownout"
        );
        assert!(full > 0, "brownout must recover as the queue drains");
        // Fully drained: the next answer is full quality again.
        let calm = server.submit(&x).unwrap().wait().unwrap();
        assert!(!calm.degraded, "recovered server serves full quality");
        assert!(!server.brownout_active());
        let report = server.shutdown();
        assert_eq!(report.aggregate.degraded, degraded as u64);
        let per_shard: u64 = report.per_shard.iter().map(|s| s.degraded).sum();
        assert_eq!(per_shard, report.aggregate.degraded);
    }

    #[test]
    fn submit_rejects_non_finite_examples() {
        let server = Server::start(engine(), BatchingConfig::default());
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let x = Tensor::from_vec([1, 2, 2], vec![0.0, bad, 0.0, 0.0]);
            match server.submit(&x) {
                Err(ServeError::BadExample { detail }) => {
                    assert!(
                        detail.contains("non-finite"),
                        "unhelpful rejection detail: {detail}"
                    );
                    assert!(detail.contains("index 1"), "detail locates the value");
                }
                Err(other) => panic!("wrong rejection for non-finite example: {other}"),
                Ok(_) => panic!("non-finite example was admitted"),
            }
        }
        // Large-but-finite values are legal inputs.
        let big = Tensor::from_vec([1, 2, 2], vec![1e30; 4]);
        server.submit(&big).unwrap().wait().unwrap();
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 1);
    }

    #[test]
    fn cascade_server_reports_uncertainty_and_escalation() {
        // Threshold 1.0: (almost) everything trusts the gate. The point
        // here is the surface, not the exit rate: predictions carry
        // uncertainty/escalated and stats count escalations per shard.
        let server = Server::builder(plan())
            .policy(ExecPolicy::Cascade(CascadePolicy::max_prob(1.0)))
            .shards(2)
            .start();
        let mut rng = StdRng::seed_from_u64(3);
        let pending: Vec<_> = (0..12)
            .map(|_| {
                server
                    .submit(&Tensor::randn([1, 2, 2], 1.0, &mut rng))
                    .unwrap()
            })
            .collect();
        let mut exited = 0;
        for p in pending {
            let got = p.wait().unwrap();
            assert!((0.0..=1.0).contains(&got.uncertainty));
            if !got.escalated {
                exited += 1;
            }
        }
        assert!(exited > 0, "a 1.0 threshold must exit some requests early");
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 12);
        assert_eq!(report.aggregate.escalated, 12 - exited as u64);
        assert!((report.aggregate.early_exit_rate() - exited as f64 / 12.0).abs() < 1e-12);
        let per_shard_escalated: u64 = report.per_shard.iter().map(|s| s.escalated).sum();
        assert_eq!(per_shard_escalated, report.aggregate.escalated);

        // Non-cascade servers still populate the surface: everything
        // escalates and uncertainty reflects the ensemble average.
        let server = Server::start(engine(), BatchingConfig::default());
        let got = server
            .submit(&Tensor::zeros([1, 2, 2]))
            .unwrap()
            .wait()
            .unwrap();
        assert!(got.escalated);
        let report = server.shutdown();
        assert_eq!(report.aggregate.escalated, report.aggregate.requests);
        assert_eq!(report.aggregate.early_exit_rate(), 0.0);
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        // Requests admitted before shutdown must be answered, not dropped
        // with Closed — even with a batching window that would otherwise
        // hold them open.
        let server = Server::builder(plan())
            .shards(2)
            .batching(BatchingConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(200),
            })
            .start();
        let pending: Vec<_> = (0..12)
            .map(|_| server.submit(&Tensor::zeros([1, 2, 2])).unwrap())
            .collect();
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 12, "shutdown drained the queue");
        for p in pending {
            p.wait()
                .expect("in-flight request answered during graceful shutdown");
        }
    }
}

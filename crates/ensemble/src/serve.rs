//! [`Server`]: a dynamic-batching front-end over the
//! [`InferenceEngine`](crate::engine::InferenceEngine).
//!
//! Production ensemble traffic is dominated by single-example requests,
//! but every kernel underneath is batch-oriented — served one by one,
//! each request would pay the full member fan-out for one row of GEMM
//! work. The server closes that gap with a **dynamic micro-batcher**:
//!
//! * requests enter a queue ([`ServeClient::submit`] is cheap and
//!   thread-safe; clients are `Clone` and live on any thread);
//! * a dedicated worker thread coalesces queued requests into one batch,
//!   up to [`BatchingConfig::max_batch`] examples or until
//!   [`BatchingConfig::max_wait`] has passed since the batch opened —
//!   whichever comes first (an idle server therefore adds at most
//!   `max_wait` latency, a busy one none);
//! * the batch runs through the engine once, and each requester receives
//!   its own row: ensemble-averaged probabilities, the arg-max label,
//!   the end-to-end latency of *its* request, and the size of the
//!   micro-batch it rode in.
//!
//! Micro-batch composition never affects results: each example's forward
//! pass is independent of its batch neighbors (the engine's determinism
//! contract), so a request answered alone is bitwise identical to the
//! same request answered inside a full batch — pinned by the
//! `serving_stack` integration suite.
//!
//! ## Example
//!
//! ```
//! use mn_ensemble::engine::InferenceEngine;
//! use mn_ensemble::serve::{BatchingConfig, Server};
//! use mn_ensemble::EnsembleMember;
//! use mn_nn::arch::{Architecture, InputSpec};
//! use mn_nn::Network;
//! use mn_tensor::Tensor;
//!
//! let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![4]);
//! let members = vec![EnsembleMember::new("m", Network::seeded(&arch, 0))];
//! let engine = InferenceEngine::new(members, 32).unwrap();
//! let server = Server::start(engine, BatchingConfig::default());
//! let pending = server.submit(&Tensor::zeros([1, 2, 2])).unwrap();
//! let prediction = pending.wait().unwrap();
//! assert_eq!(prediction.probs.len(), 3);
//! let stats = server.shutdown();
//! assert_eq!(stats.requests, 1);
//! ```

use std::fmt;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mn_nn::arch::InputSpec;
use mn_tensor::{ops, Tensor, Workspace};

use crate::engine::InferenceEngine;

/// Dynamic micro-batcher bounds.
#[derive(Clone, Copy, Debug)]
pub struct BatchingConfig {
    /// Maximum examples coalesced into one engine call.
    pub max_batch: usize,
    /// Maximum time a batch stays open waiting for more requests.
    pub max_wait: Duration,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Why a request could not be served.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServeError {
    /// The submitted example does not match the ensemble's input
    /// geometry.
    BadExample {
        /// Human-readable detail.
        detail: String,
    },
    /// The server has shut down (or shut down before answering).
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadExample { detail } => write!(f, "bad example: {detail}"),
            ServeError::Closed => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered request.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Ensemble-averaged class probabilities for this example.
    pub probs: Vec<f32>,
    /// Arg-max label under ensemble averaging.
    pub label: usize,
    /// End-to-end latency: submit to answer, including queueing and
    /// batching delay.
    pub latency: Duration,
    /// Size of the micro-batch this request was served in.
    pub batch: usize,
}

/// Aggregate counters the worker reports at shutdown (also readable as
/// the return value of [`Server::shutdown`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered.
    pub requests: u64,
    /// Engine calls made (micro-batches executed).
    pub batches: u64,
    /// Largest micro-batch executed.
    pub max_batch_filled: usize,
}

impl ServerStats {
    /// Mean examples per engine call — the batching win over
    /// one-request-per-call serving.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

struct Request {
    /// `[1, C, H, W]` example.
    example: Tensor,
    enqueued: Instant,
    reply: mpsc::Sender<Prediction>,
}

enum Msg {
    Request(Box<Request>),
    Shutdown,
}

/// A handle for submitting requests; cheap to clone and send across
/// threads.
#[derive(Clone)]
pub struct ServeClient {
    tx: mpsc::Sender<Msg>,
    input: InputSpec,
}

impl ServeClient {
    /// Submits one example — `[C, H, W]` or `[1, C, H, W]` — and returns
    /// a handle to await its prediction.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadExample`] when the shape does not match the
    /// ensemble input, [`ServeError::Closed`] when the server is gone.
    pub fn submit(&self, example: &Tensor) -> Result<PendingPrediction, ServeError> {
        let want = [self.input.channels, self.input.height, self.input.width];
        let dims = example.shape().dims();
        let ok = dims == want || (dims.len() == 4 && dims[0] == 1 && dims[1..] == want);
        if !ok {
            return Err(ServeError::BadExample {
                detail: format!(
                    "expected [{}, {}, {}] (or leading batch dim of 1), got {}",
                    want[0],
                    want[1],
                    want[2],
                    example.shape()
                ),
            });
        }
        let example = Tensor::from_vec(
            [1, self.input.channels, self.input.height, self.input.width],
            example.data().to_vec(),
        );
        let (reply, rx) = mpsc::channel();
        let request = Box::new(Request {
            example,
            enqueued: Instant::now(),
            reply,
        });
        self.tx
            .send(Msg::Request(request))
            .map_err(|_| ServeError::Closed)?;
        Ok(PendingPrediction { rx })
    }
}

/// A submitted request awaiting its answer.
pub struct PendingPrediction {
    rx: mpsc::Receiver<Prediction>,
}

impl PendingPrediction {
    /// Blocks until the prediction arrives.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] when the server shut down before answering.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)
    }
}

/// A running ensemble server: an [`InferenceEngine`] owned by a worker
/// thread behind a dynamic micro-batcher.
pub struct Server {
    client: ServeClient,
    worker: Option<JoinHandle<ServerStats>>,
}

impl Server {
    /// Takes ownership of `engine` and starts the batching worker.
    pub fn start(engine: InferenceEngine, cfg: BatchingConfig) -> Server {
        let input = engine.input_spec();
        let (tx, rx) = mpsc::channel::<Msg>();
        let worker = std::thread::Builder::new()
            .name("mn-serve".to_string())
            .spawn(move || worker_loop(engine, cfg, rx))
            .expect("serving worker spawns");
        Server {
            client: ServeClient { tx, input },
            worker: Some(worker),
        }
    }

    /// A cloneable submission handle for client threads.
    pub fn client(&self) -> ServeClient {
        self.client.clone()
    }

    /// Submits one example on the server's own handle (see
    /// [`ServeClient::submit`]).
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::submit`].
    pub fn submit(&self, example: &Tensor) -> Result<PendingPrediction, ServeError> {
        self.client.submit(example)
    }

    /// Stops the worker after the micro-batch in flight completes and
    /// returns its counters. Requests still queued (and clients still
    /// holding handles) observe [`ServeError::Closed`].
    pub fn shutdown(mut self) -> ServerStats {
        let _ = self.client.tx.send(Msg::Shutdown);
        let handle = self.worker.take().expect("worker present until shutdown");
        handle.join().expect("serving worker exits cleanly")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(handle) = self.worker.take() {
            let _ = self.client.tx.send(Msg::Shutdown);
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    mut engine: InferenceEngine,
    cfg: BatchingConfig,
    rx: mpsc::Receiver<Msg>,
) -> ServerStats {
    let max_batch = cfg.max_batch.max(1);
    let input = engine.input_spec();
    let row = input.channels * input.height * input.width;
    let k = engine.num_classes();
    let mut ws = Workspace::new();
    let mut stats = ServerStats::default();
    'serve: loop {
        // Block for the request that opens the next micro-batch.
        let first = match rx.recv() {
            Ok(Msg::Request(r)) => r,
            Ok(Msg::Shutdown) | Err(_) => break 'serve,
        };
        let deadline = Instant::now() + cfg.max_wait;
        let mut batch = vec![first];
        let mut stop_after = false;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(Msg::Request(r)) => batch.push(r),
                Ok(Msg::Shutdown) => {
                    stop_after = true;
                    break;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    stop_after = true;
                    break;
                }
            }
        }

        // One engine call for the whole micro-batch.
        let b = batch.len();
        let mut xb = ws.acquire_uninit([b, input.channels, input.height, input.width]);
        for (i, req) in batch.iter().enumerate() {
            xb.data_mut()[i * row..(i + 1) * row].copy_from_slice(req.example.data());
        }
        let avg = engine.predict_average(&xb);
        ws.release(xb);
        let answered = Instant::now();
        let labels = ops::argmax_rows(&avg);
        for (i, req) in batch.into_iter().enumerate() {
            let prediction = Prediction {
                probs: avg.data()[i * k..(i + 1) * k].to_vec(),
                label: labels[i],
                latency: answered - req.enqueued,
                batch: b,
            };
            // A requester that gave up (dropped its handle) is not an
            // error for the server.
            let _ = req.reply.send(prediction);
        }
        stats.requests += b as u64;
        stats.batches += 1;
        stats.max_batch_filled = stats.max_batch_filled.max(b);
        if stop_after {
            break 'serve;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::EnsembleMember;
    use mn_nn::arch::{Architecture, InputSpec};
    use mn_nn::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> InferenceEngine {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![6]);
        let members: Vec<EnsembleMember> = (0..2)
            .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
            .collect();
        InferenceEngine::new(members, 8).unwrap()
    }

    #[test]
    fn serves_single_requests_with_latency_and_stats() {
        let server = Server::start(engine(), BatchingConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut pending = Vec::new();
        for _ in 0..5 {
            let x = Tensor::randn([1, 2, 2], 1.0, &mut rng);
            pending.push(server.submit(&x).unwrap());
        }
        for p in pending {
            let got = p.wait().unwrap();
            assert_eq!(got.probs.len(), 3);
            assert!(got.label < 3);
            assert!(got.batch >= 1);
            assert!(got.latency > Duration::ZERO);
            let sum: f32 = got.probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests, 5);
        assert!(stats.batches >= 1 && stats.batches <= 5);
        assert!(stats.mean_batch() >= 1.0);
    }

    #[test]
    fn rejects_wrong_geometry_eagerly() {
        let server = Server::start(engine(), BatchingConfig::default());
        let bad = Tensor::zeros([2, 2, 2]);
        assert!(matches!(
            server.submit(&bad),
            Err(ServeError::BadExample { .. })
        ));
        let batch_of_two = Tensor::zeros([2, 1, 2, 2]);
        assert!(matches!(
            server.submit(&batch_of_two),
            Err(ServeError::BadExample { .. })
        ));
        server.shutdown();
    }

    #[test]
    fn accepts_three_d_and_unit_batch_examples() {
        let server = Server::start(engine(), BatchingConfig::default());
        let a = server.submit(&Tensor::zeros([1, 2, 2])).unwrap();
        let b = server.submit(&Tensor::zeros([1, 1, 2, 2])).unwrap();
        let (pa, pb) = (a.wait().unwrap(), b.wait().unwrap());
        assert_eq!(pa.probs, pb.probs, "same example, same answer");
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_outstanding_clients() {
        let server = Server::start(engine(), BatchingConfig::default());
        let client = server.client();
        server.shutdown();
        assert!(matches!(
            client.submit(&Tensor::zeros([1, 2, 2])),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn micro_batching_coalesces_under_load() {
        // A generous wait window plus a burst submitted before the first
        // answer can complete must produce fewer engine calls than
        // requests.
        let server = Server::start(
            engine(),
            BatchingConfig {
                max_batch: 32,
                max_wait: Duration::from_millis(50),
            },
        );
        let mut pending = Vec::new();
        for _ in 0..16 {
            pending.push(server.submit(&Tensor::zeros([1, 2, 2])).unwrap());
        }
        for p in pending {
            p.wait().unwrap();
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests, 16);
        assert!(
            stats.batches < 16,
            "expected coalescing, got {} batches",
            stats.batches
        );
        assert!(stats.max_batch_filled > 1);
    }
}

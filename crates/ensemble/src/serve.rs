//! [`Server`]: a sharded, backpressured, dynamic-batching front-end over
//! a shared [`EnginePlan`].
//!
//! Production ensemble traffic is dominated by single-example requests,
//! but every kernel underneath is batch-oriented — served one by one,
//! each request would pay the full member fan-out for one row of GEMM
//! work. And one batching worker caps the whole server at a single
//! engine's throughput. The server closes both gaps:
//!
//! ```text
//!                  ┌──────────────────────────────┐
//!  ServeClient ──▶ │   bounded MPMC request queue │──▶ shard 0: EngineSession ─┐
//!  ServeClient ──▶ │  (Overloaded when full)      │──▶ shard 1: EngineSession ─┼─▶ replies
//!      ...         │                              │──▶ shard N: EngineSession ─┘
//!                  └──────────────────────────────┘         │
//!                                            Arc<EnginePlan> (one copy of all weights)
//! ```
//!
//! * **Sharding** — [`ServerBuilder::shards`] starts N worker threads,
//!   each owning an [`EngineSession`] over one shared [`EnginePlan`]: no
//!   per-shard weight clones, N concurrent micro-batches.
//! * **Backpressure** — the request queue is bounded
//!   ([`ServerBuilder::queue_capacity`]). A submit against a full queue
//!   fails *immediately* with [`ServeError::Overloaded`] (carrying the
//!   observed queue depth) instead of growing the queue without bound;
//!   the server keeps serving and later submits succeed again.
//! * **Dynamic micro-batching** — each shard coalesces queued requests
//!   into one engine call, up to [`BatchingConfig::max_batch`] examples
//!   or until [`BatchingConfig::max_wait`] has passed since the batch's
//!   *first request was enqueued* (an idle server adds at most `max_wait`
//!   latency, a busy one none — and a request that already sat in the
//!   queue for the whole window is flushed immediately rather than
//!   charged a second window).
//! * **Uncertainty surface** — every [`Prediction`] carries the gate
//!   [`Prediction::uncertainty`] and whether the example
//!   [`Prediction::escalated`] to the full ensemble. Under a cascade
//!   policy ([`crate::engine::ExecPolicy::Cascade`]) confident examples
//!   skip K-1 members; under any other policy the fields still report
//!   the ensemble's own confidence (and everything escalates).
//!   Per-shard escalation counts land in [`ServerStats::escalated`].
//! * **Graceful shutdown** — [`Server::shutdown`] closes the queue to new
//!   submissions, lets every shard drain the requests already admitted
//!   (each gets its answer, none observe `Closed`), then joins the
//!   workers and returns per-shard plus aggregate [`ServerStats`].
//! * **Panic containment** — every queue lock recovers from mutex
//!   poisoning, so one worker dying mid-request cannot cascade panics
//!   into the other shards or any client: remaining shards keep serving,
//!   the orphaned request's [`PendingPrediction::wait`] returns
//!   [`ServeError::WorkerGone`] instead of blocking forever, and
//!   [`Server::shutdown`] counts the death in
//!   [`ServerReport::worker_panics`] rather than re-panicking.
//!
//! Micro-batch composition and shard count never affect results: each
//! example's forward pass is independent of its batch neighbors (the
//! engine's determinism contract), so a request answered alone on shard 3
//! is bitwise identical to the same request answered inside a full batch
//! on shard 0 — pinned by the `serving_stack` integration suite.
//!
//! ## Example
//!
//! ```
//! use mn_ensemble::engine::EnginePlan;
//! use mn_ensemble::serve::Server;
//! use mn_ensemble::EnsembleMember;
//! use mn_nn::arch::{Architecture, InputSpec};
//! use mn_nn::Network;
//! use mn_tensor::Tensor;
//!
//! let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![4]);
//! let members = vec![EnsembleMember::new("m", Network::seeded(&arch, 0))];
//! let plan = EnginePlan::new(members, 32).unwrap().into_shared();
//! let server = Server::builder(plan).shards(2).queue_capacity(64).start();
//! let pending = server.submit(&Tensor::zeros([1, 2, 2])).unwrap();
//! let prediction = pending.wait().unwrap();
//! assert_eq!(prediction.probs.len(), 3);
//! let report = server.shutdown();
//! assert_eq!(report.aggregate.requests, 1);
//! assert_eq!(report.per_shard.len(), 2);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mn_nn::arch::InputSpec;
use mn_tensor::{ops, Tensor, Workspace};

use crate::engine::{EnginePlan, EngineSession, ExecPolicy, InferenceEngine};

/// The coalescing deadline for a micro-batch whose first request was
/// enqueued at `enqueued`, observed at `now`: the batch closes `max_wait`
/// after the request *entered the queue*, not after the shard popped it —
/// a request that already waited in the queue must not be charged a
/// second full window (clamped to `now` so an overdue batch still
/// collects whatever is already queued without waiting).
fn coalesce_deadline(enqueued: Instant, now: Instant, max_wait: Duration) -> Instant {
    (enqueued + max_wait).max(now)
}

/// Dynamic micro-batcher bounds (per shard).
#[derive(Clone, Copy, Debug)]
pub struct BatchingConfig {
    /// Maximum examples coalesced into one engine call.
    pub max_batch: usize,
    /// Maximum time a batch stays open waiting for more requests.
    pub max_wait: Duration,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Why a request could not be served.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServeError {
    /// The submitted example does not match the ensemble's input
    /// geometry.
    BadExample {
        /// Human-readable detail.
        detail: String,
    },
    /// The bounded request queue is full: the server is admitting work
    /// faster than its shards drain it. Typed so callers can shed load /
    /// retry with backoff instead of growing an unbounded queue.
    Overloaded {
        /// Queue depth observed at rejection time (= the configured
        /// capacity).
        queue_depth: usize,
    },
    /// The server has shut down (or shut down before answering).
    Closed,
    /// The worker shard serving this request died (panicked) after
    /// dequeueing it, so no answer will ever arrive. Typed so a waiting
    /// client returns instead of blocking forever on a reply channel
    /// whose sender unwound.
    WorkerGone,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadExample { detail } => write!(f, "bad example: {detail}"),
            ServeError::Overloaded { queue_depth } => {
                write!(f, "server overloaded: request queue full at {queue_depth}")
            }
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::WorkerGone => {
                write!(f, "serving worker died before answering this request")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One answered request.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Final class probabilities for this example: the ensemble average,
    /// or the gate member's answer when the example exited a cascade
    /// early.
    pub probs: Vec<f32>,
    /// Arg-max label of [`Prediction::probs`].
    pub label: usize,
    /// Gate uncertainty in `[0, 1]` (`1 - confidence` under the scoring
    /// metric; [`crate::engine::Confidence::MaxProb`] over the ensemble
    /// average when no cascade is configured).
    pub uncertainty: f32,
    /// Whether this example ran the full ensemble (`true`) or exited a
    /// cascade early with the gate's answer (`false`). Always `true`
    /// outside cascade policies.
    pub escalated: bool,
    /// End-to-end latency: submit to answer, including queueing and
    /// batching delay.
    pub latency: Duration,
    /// Size of the micro-batch this request was served in.
    pub batch: usize,
    /// Worker shard that served this request.
    pub shard: usize,
}

/// Counters one shard (or the whole server, aggregated) reports at
/// shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered.
    pub requests: u64,
    /// Engine calls made (micro-batches executed).
    pub batches: u64,
    /// Largest micro-batch executed.
    pub max_batch_filled: usize,
    /// Requests that ran the full ensemble. Equals
    /// [`ServerStats::requests`] outside cascade policies; under a
    /// cascade, `requests - escalated` exited early on the gate alone.
    pub escalated: u64,
}

impl ServerStats {
    /// Mean examples per engine call — the batching win over
    /// one-request-per-call serving.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Fraction of requests that exited a cascade early (0.0 with no
    /// traffic, and under non-cascade policies).
    pub fn early_exit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.requests - self.escalated) as f64 / self.requests as f64
        }
    }

    fn merge(&mut self, other: &ServerStats) {
        self.requests += other.requests;
        self.batches += other.batches;
        self.max_batch_filled = self.max_batch_filled.max(other.max_batch_filled);
        self.escalated += other.escalated;
    }
}

/// What [`Server::shutdown`] returns: aggregate counters, the per-shard
/// breakdown, and the admission-control tally.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Counters summed over all shards.
    pub aggregate: ServerStats,
    /// Counters per worker shard, in shard order.
    pub per_shard: Vec<ServerStats>,
    /// Submissions rejected with [`ServeError::Overloaded`] over the
    /// server's lifetime.
    pub rejected: u64,
    /// Worker shards that died (panicked) instead of exiting cleanly.
    /// Their [`ServerReport::per_shard`] entries are zeroed — the
    /// counters unwound with the worker.
    pub worker_panics: u64,
}

struct Request {
    /// `[1, C, H, W]` example.
    example: Tensor,
    enqueued: Instant,
    reply: mpsc::Sender<Prediction>,
}

/// The bounded MPMC request queue every shard pulls from. Hand-rolled on
/// `Mutex<VecDeque>` + `Condvar` (the workspace has no queue dependency):
/// admission is O(1) under one lock, `close` flips `open` so producers
/// are rejected while consumers drain what was already admitted.
///
/// Every lock acquisition recovers from poisoning: a worker that panics
/// while holding the lock must not cascade its panic into every other
/// shard and client. The state under the lock (a deque plus a flag) is
/// structurally valid at every point a panic can unwind through, so the
/// "poisoned" data is safe to keep serving from.
struct SharedQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
    rejected: AtomicU64,
    /// Test-only failpoint (see [`ServerBuilder::panic_on_poison_example`]):
    /// when set, popping a request whose example contains `f32::MAX`
    /// panics *while holding the queue lock* — the worst-case worker
    /// death. (The marker is finite on purpose: non-finite examples are
    /// rejected at submit and can never reach the queue.)
    poison_pill: bool,
}

struct QueueState {
    queue: VecDeque<Box<Request>>,
    open: bool,
}

impl SharedQueue {
    fn new(capacity: usize, poison_pill: bool) -> Self {
        SharedQueue {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(capacity.min(1024)),
                open: true,
            }),
            available: Condvar::new(),
            capacity,
            rejected: AtomicU64::new(0),
            poison_pill,
        }
    }

    /// Locks the queue state, recovering from a poisoned mutex (see the
    /// type-level docs for why that is sound here).
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fires the injected failpoint if `request` is a poison pill.
    fn maybe_detonate(&self, request: &Request) {
        if self.poison_pill && request.example.data().contains(&f32::MAX) {
            panic!("injected failpoint: dequeued a poison-pill request");
        }
    }

    /// Admission control: typed rejection instead of unbounded growth.
    fn push(&self, request: Box<Request>) -> Result<(), ServeError> {
        let mut state = self.lock_state();
        if !state.open {
            return Err(ServeError::Closed);
        }
        if state.queue.len() >= self.capacity {
            let depth = state.queue.len();
            drop(state);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded { queue_depth: depth });
        }
        state.queue.push_back(request);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a request is available. Returns `None` only when the
    /// queue is closed **and** fully drained — shutdown answers every
    /// admitted request.
    fn pop_blocking(&self) -> Option<Box<Request>> {
        let mut state = self.lock_state();
        loop {
            if let Some(r) = state.queue.pop_front() {
                self.maybe_detonate(&r);
                return Some(r);
            }
            if !state.open {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking-ish pop with a deadline, used while a shard's batch
    /// is open: returns `None` on deadline or when the queue is closed
    /// and empty (the shard then flushes its open batch).
    fn pop_until(&self, deadline: Instant) -> Option<Box<Request>> {
        let mut state = self.lock_state();
        loop {
            if let Some(r) = state.queue.pop_front() {
                self.maybe_detonate(&r);
                return Some(r);
            }
            if !state.open {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self
                .available
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    fn close(&self) {
        let mut state = self.lock_state();
        state.open = false;
        drop(state);
        self.available.notify_all();
    }

    fn depth(&self) -> usize {
        self.lock_state().queue.len()
    }
}

/// A handle for submitting requests; cheap to clone and send across
/// threads.
#[derive(Clone)]
pub struct ServeClient {
    queue: Arc<SharedQueue>,
    input: InputSpec,
}

impl ServeClient {
    /// Submits one example — `[C, H, W]` or `[1, C, H, W]` — and returns
    /// a handle to await its prediction.
    ///
    /// Examples are validated at admission: a NaN or infinite value would
    /// flow through softmax into probabilities, argmax, and cascade
    /// confidence as silent garbage, so non-finite data is rejected here
    /// with a typed error instead. The finiteness check is fused into the
    /// one copy each request pays (the example is staged into its queued
    /// `[1, C, H, W]` tensor), not a second traversal.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadExample`] when the shape does not match the
    /// ensemble input or the data contains a non-finite value,
    /// [`ServeError::Overloaded`] when the bounded queue is full,
    /// [`ServeError::Closed`] when the server is gone.
    pub fn submit(&self, example: &Tensor) -> Result<PendingPrediction, ServeError> {
        let want = [self.input.channels, self.input.height, self.input.width];
        let dims = example.shape().dims();
        let ok = dims == want || (dims.len() == 4 && dims[0] == 1 && dims[1..] == want);
        if !ok {
            return Err(ServeError::BadExample {
                detail: format!(
                    "expected [{}, {}, {}] (or leading batch dim of 1), got {}",
                    want[0],
                    want[1],
                    want[2],
                    example.shape()
                ),
            });
        }
        let mut bad: Option<(usize, f32)> = None;
        let data: Vec<f32> = example
            .data()
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if bad.is_none() && !v.is_finite() {
                    bad = Some((i, v));
                }
                v
            })
            .collect();
        if let Some((i, v)) = bad {
            return Err(ServeError::BadExample {
                detail: format!("non-finite value {v} at flat index {i}"),
            });
        }
        let example = Tensor::from_vec(
            [1, self.input.channels, self.input.height, self.input.width],
            data,
        );
        let (reply, rx) = mpsc::channel();
        let request = Box::new(Request {
            example,
            enqueued: Instant::now(),
            reply,
        });
        self.queue.push(request)?;
        Ok(PendingPrediction { rx })
    }
}

/// A submitted request awaiting its answer.
pub struct PendingPrediction {
    rx: mpsc::Receiver<Prediction>,
}

impl PendingPrediction {
    /// Blocks until the prediction arrives.
    ///
    /// Graceful shutdown (and even dropping the server) drains and
    /// answers every admitted request first, so this does not error on a
    /// normal shutdown race — an error here means the reply sender was
    /// dropped without ever sending, i.e. the worker holding this request
    /// died.
    ///
    /// # Errors
    ///
    /// [`ServeError::WorkerGone`] when the worker shard serving this
    /// request panicked before replying.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::WorkerGone)
    }
}

/// Configures and starts a [`Server`]: shard count, queue bound, batching
/// window, and execution policy, all over one shared [`EnginePlan`].
pub struct ServerBuilder {
    plan: Arc<EnginePlan>,
    policy: ExecPolicy,
    shards: usize,
    queue_capacity: usize,
    batching: BatchingConfig,
    poison_pill: bool,
    stall_first_pop: Option<Duration>,
}

impl ServerBuilder {
    /// Starts from a shared plan with 1 shard, a 1024-request queue
    /// bound, the default batching window, and the plan's default policy.
    pub fn new(plan: Arc<EnginePlan>) -> Self {
        let policy = plan.default_policy();
        ServerBuilder {
            plan,
            policy,
            shards: 1,
            queue_capacity: 1024,
            batching: BatchingConfig::default(),
            poison_pill: false,
            stall_first_pop: None,
        }
    }

    /// Number of worker shards, each owning an [`EngineSession`] over the
    /// shared plan (clamped to at least 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Bound on queued (admitted, not yet batched) requests; submissions
    /// beyond it are rejected with [`ServeError::Overloaded`] (clamped to
    /// at least 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Per-shard micro-batching bounds.
    pub fn batching(mut self, cfg: BatchingConfig) -> Self {
        self.batching = cfg;
        self
    }

    /// Execution policy every shard's session runs.
    pub fn policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Test-only failpoint: the worker that dequeues a request whose
    /// example contains `f32::MAX` panics *while holding the queue lock*
    /// — the worst-case worker death (the mutex is left poisoned and the
    /// request is dropped unanswered). Regression tests use this to pin
    /// that one dying shard neither cascades panics into the other
    /// shards/clients nor hangs the orphaned waiter. (A finite marker,
    /// because non-finite examples are rejected at submit.)
    #[doc(hidden)]
    pub fn panic_on_poison_example(mut self) -> Self {
        self.poison_pill = true;
        self
    }

    /// Test-only failpoint: each worker sleeps once, for this duration,
    /// right after its first dequeue — long enough for later requests to
    /// accumulate queue wait, so the deadline-anchoring regression test
    /// can observe that queued time is not double-charged against
    /// [`BatchingConfig::max_wait`].
    #[doc(hidden)]
    pub fn stall_first_pop(mut self, stall: Duration) -> Self {
        self.stall_first_pop = Some(stall);
        self
    }

    /// Starts the worker shards and returns the running server.
    pub fn start(self) -> Server {
        let queue = Arc::new(SharedQueue::new(self.queue_capacity, self.poison_pill));
        let input = self.plan.input_spec();
        let workers: Vec<JoinHandle<ServerStats>> = (0..self.shards)
            .map(|shard| {
                let mut session = self.plan.session();
                session.set_policy(self.policy);
                let queue = Arc::clone(&queue);
                let cfg = self.batching;
                let stall = self.stall_first_pop;
                std::thread::Builder::new()
                    .name(format!("mn-serve-{shard}"))
                    .spawn(move || shard_loop(shard, session, cfg, queue, stall))
                    .expect("serving worker spawns")
            })
            .collect();
        Server {
            client: ServeClient {
                queue: Arc::clone(&queue),
                input,
            },
            queue,
            workers,
        }
    }
}

/// A running ensemble server: N worker shards — each an [`EngineSession`]
/// over one shared [`EnginePlan`] — pulling from one bounded MPMC request
/// queue. See the module docs for the full picture.
pub struct Server {
    client: ServeClient,
    queue: Arc<SharedQueue>,
    workers: Vec<JoinHandle<ServerStats>>,
}

impl Server {
    /// Entry point of the builder API (see [`ServerBuilder`]).
    pub fn builder(plan: Arc<EnginePlan>) -> ServerBuilder {
        ServerBuilder::new(plan)
    }

    /// Compatibility constructor over the pre-split API: consumes an
    /// [`InferenceEngine`], inherits its policy, and serves its plan with
    /// one shard. Equivalent to
    /// `Server::builder(engine.into_plan()).batching(cfg).start()`.
    pub fn start(engine: InferenceEngine, cfg: BatchingConfig) -> Server {
        let policy = engine.policy();
        Server::builder(engine.into_plan())
            .policy(policy)
            .batching(cfg)
            .start()
    }

    /// A cloneable submission handle for client threads.
    pub fn client(&self) -> ServeClient {
        self.client.clone()
    }

    /// Submits one example on the server's own handle (see
    /// [`ServeClient::submit`]).
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::submit`].
    pub fn submit(&self, example: &Tensor) -> Result<PendingPrediction, ServeError> {
        self.client.submit(example)
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// Requests currently admitted but not yet pulled into a micro-batch.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Graceful shutdown: closes the queue to new submissions (clients
    /// observe [`ServeError::Closed`]), drains every request already
    /// admitted — each receives its answer — then joins the shards and
    /// returns per-shard plus aggregate counters.
    ///
    /// A shard that panicked instead of exiting cleanly does not panic
    /// the shutdown: it is counted in [`ServerReport::worker_panics`] and
    /// contributes zeroed per-shard stats.
    pub fn shutdown(mut self) -> ServerReport {
        self.queue.close();
        let mut worker_panics = 0u64;
        let per_shard: Vec<ServerStats> = self
            .workers
            .drain(..)
            .map(|w| {
                w.join().unwrap_or_else(|_| {
                    worker_panics += 1;
                    ServerStats::default()
                })
            })
            .collect();
        let mut aggregate = ServerStats::default();
        for s in &per_shard {
            aggregate.merge(s);
        }
        ServerReport {
            aggregate,
            per_shard,
            rejected: self.queue.rejected.load(Ordering::Relaxed),
            worker_panics,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn shard_loop(
    shard: usize,
    mut session: EngineSession,
    cfg: BatchingConfig,
    queue: Arc<SharedQueue>,
    mut stall_first_pop: Option<Duration>,
) -> ServerStats {
    let max_batch = cfg.max_batch.max(1);
    let input = session.plan().input_spec();
    let row = input.channels * input.height * input.width;
    let k = session.plan().num_classes();
    let mut ws = Workspace::new();
    let mut stats = ServerStats::default();
    // `pop_blocking` returns None only when the queue is closed *and*
    // drained, so every admitted request is answered before exit.
    while let Some(first) = queue.pop_blocking() {
        if let Some(stall) = stall_first_pop.take() {
            std::thread::sleep(stall);
        }
        // The coalescing window opened when `first` was *enqueued*, not
        // now: a request that already waited out its window in the queue
        // flushes immediately instead of paying `max_wait` twice.
        let deadline = coalesce_deadline(first.enqueued, Instant::now(), cfg.max_wait);
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match queue.pop_until(deadline) {
                Some(r) => batch.push(r),
                None => break,
            }
        }

        // One engine call for the whole micro-batch.
        let b = batch.len();
        let mut xb = ws.acquire_uninit([b, input.channels, input.height, input.width]);
        for (i, req) in batch.iter().enumerate() {
            xb.data_mut()[i * row..(i + 1) * row].copy_from_slice(req.example.data());
        }
        let scored = session.predict_scored(&xb);
        ws.release(xb);
        let answered = Instant::now();
        let labels = ops::argmax_rows(&scored.probs);
        for (i, req) in batch.into_iter().enumerate() {
            let prediction = Prediction {
                probs: scored.probs.data()[i * k..(i + 1) * k].to_vec(),
                label: labels[i],
                uncertainty: scored.uncertainty[i],
                escalated: scored.escalated[i],
                latency: answered - req.enqueued,
                batch: b,
                shard,
            };
            // A requester that gave up (dropped its handle) is not an
            // error for the server.
            let _ = req.reply.send(prediction);
        }
        stats.requests += b as u64;
        stats.batches += 1;
        stats.max_batch_filled = stats.max_batch_filled.max(b);
        stats.escalated += scored.num_escalated() as u64;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::EnsembleMember;
    use mn_nn::arch::{Architecture, InputSpec};
    use mn_nn::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan() -> Arc<EnginePlan> {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![6]);
        let members: Vec<EnsembleMember> = (0..2)
            .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
            .collect();
        EnginePlan::new(members, 8).unwrap().into_shared()
    }

    fn engine() -> InferenceEngine {
        InferenceEngine::from_plan(plan())
    }

    #[test]
    fn serves_single_requests_with_latency_and_stats() {
        let server = Server::start(engine(), BatchingConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut pending = Vec::new();
        for _ in 0..5 {
            let x = Tensor::randn([1, 2, 2], 1.0, &mut rng);
            pending.push(server.submit(&x).unwrap());
        }
        for p in pending {
            let got = p.wait().unwrap();
            assert_eq!(got.probs.len(), 3);
            assert!(got.label < 3);
            assert!(got.batch >= 1);
            assert_eq!(got.shard, 0, "single-shard server has one shard id");
            assert!(got.latency > Duration::ZERO);
            let sum: f32 = got.probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 5);
        assert!(report.aggregate.batches >= 1 && report.aggregate.batches <= 5);
        assert!(report.aggregate.mean_batch() >= 1.0);
        assert_eq!(report.per_shard.len(), 1);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn rejects_wrong_geometry_eagerly() {
        let server = Server::start(engine(), BatchingConfig::default());
        let bad = Tensor::zeros([2, 2, 2]);
        assert!(matches!(
            server.submit(&bad),
            Err(ServeError::BadExample { .. })
        ));
        let batch_of_two = Tensor::zeros([2, 1, 2, 2]);
        assert!(matches!(
            server.submit(&batch_of_two),
            Err(ServeError::BadExample { .. })
        ));
        server.shutdown();
    }

    #[test]
    fn accepts_three_d_and_unit_batch_examples() {
        let server = Server::start(engine(), BatchingConfig::default());
        let a = server.submit(&Tensor::zeros([1, 2, 2])).unwrap();
        let b = server.submit(&Tensor::zeros([1, 1, 2, 2])).unwrap();
        let (pa, pb) = (a.wait().unwrap(), b.wait().unwrap());
        assert_eq!(pa.probs, pb.probs, "same example, same answer");
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_outstanding_clients() {
        let server = Server::start(engine(), BatchingConfig::default());
        let client = server.client();
        server.shutdown();
        assert!(matches!(
            client.submit(&Tensor::zeros([1, 2, 2])),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn micro_batching_coalesces_under_load() {
        // A generous wait window plus a burst submitted before the first
        // answer can complete must produce fewer engine calls than
        // requests.
        let server = Server::start(
            engine(),
            BatchingConfig {
                max_batch: 32,
                max_wait: Duration::from_millis(50),
            },
        );
        let mut pending = Vec::new();
        for _ in 0..16 {
            pending.push(server.submit(&Tensor::zeros([1, 2, 2])).unwrap());
        }
        for p in pending {
            p.wait().unwrap();
        }
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 16);
        assert!(
            report.aggregate.batches < 16,
            "expected coalescing, got {} batches",
            report.aggregate.batches
        );
        assert!(report.aggregate.max_batch_filled > 1);
    }

    #[test]
    fn sharded_server_answers_every_request() {
        let server = Server::builder(plan())
            .shards(3)
            .batching(BatchingConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(200),
            })
            .start();
        assert_eq!(server.num_shards(), 3);
        let mut rng = StdRng::seed_from_u64(2);
        let pending: Vec<_> = (0..24)
            .map(|_| {
                let x = Tensor::randn([1, 2, 2], 1.0, &mut rng);
                server.submit(&x).unwrap()
            })
            .collect();
        for p in pending {
            let got = p.wait().unwrap();
            assert!(got.shard < 3);
        }
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 24);
        assert_eq!(report.per_shard.len(), 3);
        let summed: u64 = report.per_shard.iter().map(|s| s.requests).sum();
        assert_eq!(summed, 24, "per-shard stats must sum to the aggregate");
    }

    #[test]
    fn overload_rejects_typed_then_recovers() {
        // Tiny queue, small batches: flooding submits must hit the bound
        // with a typed Overloaded error...
        let server = Server::builder(plan())
            .shards(1)
            .queue_capacity(2)
            .batching(BatchingConfig {
                max_batch: 2,
                max_wait: Duration::ZERO,
            })
            .start();
        let x = Tensor::zeros([1, 2, 2]);
        let mut pending = Vec::new();
        let mut overloaded = None;
        for _ in 0..100_000 {
            match server.submit(&x) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded { queue_depth }) => {
                    overloaded = Some(queue_depth);
                    break;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        let depth = overloaded.expect("a tiny queue must overflow under a submit flood");
        assert_eq!(depth, 2, "rejection reports the configured bound");
        // ...every admitted request still gets its answer...
        for p in pending {
            p.wait().expect("admitted requests are served");
        }
        // ...and the server recovers: later submits succeed again.
        let recovered = server
            .submit(&x)
            .expect("server accepts again once the queue drains");
        recovered.wait().unwrap();
        let report = server.shutdown();
        assert!(report.rejected >= 1, "rejections are counted");
    }

    #[test]
    fn panicking_worker_neither_poisons_queue_nor_hangs_clients() {
        // Two shards; a poison-pill request kills whichever shard
        // dequeues it *while that shard holds the queue lock* — the
        // worst case for mutex poisoning.
        let server = Server::builder(plan())
            .shards(2)
            .panic_on_poison_example()
            .batching(BatchingConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(200),
            })
            .start();
        let x = Tensor::zeros([1, 2, 2]);
        // Sanity: the server works before the injected failure.
        server.submit(&x).unwrap().wait().unwrap();

        let pill = Tensor::from_vec([1, 2, 2], vec![f32::MAX; 4]);
        let orphan = server.submit(&pill).unwrap();
        // The orphaned request returns a typed error instead of blocking
        // forever on a reply that can never come.
        assert_eq!(orphan.wait().unwrap_err(), ServeError::WorkerGone);

        // The queue mutex was poisoned by the dying worker, but both the
        // client path (submit locks it) and the surviving shard recover:
        // the server keeps answering.
        for _ in 0..8 {
            let got = server
                .submit(&x)
                .expect("submits succeed after a worker death")
                .wait()
                .expect("surviving shards keep serving");
            assert_eq!(got.probs.len(), 3);
        }
        // Shutdown reports the death instead of re-panicking the caller.
        let report = server.shutdown();
        assert_eq!(report.worker_panics, 1);
        assert_eq!(report.per_shard.len(), 2);
        // The dead shard's counters unwound with it (it may have served
        // the sanity request); the surviving shard alone answered the 8
        // post-failure requests.
        assert!(report.aggregate.requests >= 8);
    }

    #[test]
    fn coalesce_deadline_anchors_at_enqueue_time() {
        let t0 = Instant::now();
        let wait = Duration::from_millis(10);
        // Fresh request: the window runs from its enqueue time.
        assert_eq!(coalesce_deadline(t0, t0, wait), t0 + wait);
        // Popped mid-window: the remaining window, not a fresh one.
        let now = t0 + Duration::from_millis(4);
        assert_eq!(coalesce_deadline(t0, now, wait), t0 + wait);
        // Popped after the window already expired in the queue: flush
        // now, never wait again.
        let late = t0 + Duration::from_millis(25);
        assert_eq!(coalesce_deadline(t0, late, wait), late);
    }

    #[test]
    fn batching_deadline_does_not_double_charge_queued_requests() {
        // Regression: the deadline used to be `Instant::now() + max_wait`
        // at *pop* time, so a request that already sat in the queue paid
        // its queue wait plus a second full window. Stall the (single)
        // worker long enough for requests to age in the queue, then check
        // the aged request is answered within ~one window of its submit,
        // not two.
        let max_wait = Duration::from_millis(300);
        let server = Server::builder(plan())
            .shards(1)
            .stall_first_pop(Duration::from_millis(250))
            .batching(BatchingConfig {
                max_batch: 2,
                max_wait,
            })
            .start();
        let x = Tensor::zeros([1, 2, 2]);
        // r1 is popped immediately; the worker then stalls 250ms while r2
        // and r3 age in the queue.
        let r1 = server.submit(&x).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let r2 = server.submit(&x).unwrap();
        let r3 = server.submit(&x).unwrap();
        // After the stall: r2 fills r1's batch (max_batch 2). r3 opens
        // the next batch alone at ~270ms of age — its window expired in
        // the queue, so it must flush nearly immediately. The old code
        // waited a fresh 300ms window on top (~570ms total latency).
        let _ = r1.wait().unwrap();
        let _ = r2.wait().unwrap();
        let p3 = r3.wait().unwrap();
        assert!(
            p3.latency < Duration::from_millis(450),
            "queued request was charged a second window: {:?}",
            p3.latency
        );
        server.shutdown();
    }

    #[test]
    fn submit_rejects_non_finite_examples() {
        let server = Server::start(engine(), BatchingConfig::default());
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let x = Tensor::from_vec([1, 2, 2], vec![0.0, bad, 0.0, 0.0]);
            match server.submit(&x) {
                Err(ServeError::BadExample { detail }) => {
                    assert!(
                        detail.contains("non-finite"),
                        "unhelpful rejection detail: {detail}"
                    );
                    assert!(detail.contains("index 1"), "detail locates the value");
                }
                Err(other) => panic!("wrong rejection for non-finite example: {other}"),
                Ok(_) => panic!("non-finite example was admitted"),
            }
        }
        // Large-but-finite values are legal inputs.
        let big = Tensor::from_vec([1, 2, 2], vec![1e30; 4]);
        server.submit(&big).unwrap().wait().unwrap();
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 1);
    }

    #[test]
    fn cascade_server_reports_uncertainty_and_escalation() {
        use crate::engine::CascadePolicy;
        // Threshold 1.0: (almost) everything trusts the gate. The point
        // here is the surface, not the exit rate: predictions carry
        // uncertainty/escalated and stats count escalations per shard.
        let server = Server::builder(plan())
            .policy(ExecPolicy::Cascade(CascadePolicy::max_prob(1.0)))
            .shards(2)
            .start();
        let mut rng = StdRng::seed_from_u64(3);
        let pending: Vec<_> = (0..12)
            .map(|_| {
                server
                    .submit(&Tensor::randn([1, 2, 2], 1.0, &mut rng))
                    .unwrap()
            })
            .collect();
        let mut exited = 0;
        for p in pending {
            let got = p.wait().unwrap();
            assert!((0.0..=1.0).contains(&got.uncertainty));
            if !got.escalated {
                exited += 1;
            }
        }
        assert!(exited > 0, "a 1.0 threshold must exit some requests early");
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 12);
        assert_eq!(report.aggregate.escalated, 12 - exited as u64);
        assert!((report.aggregate.early_exit_rate() - exited as f64 / 12.0).abs() < 1e-12);
        let per_shard_escalated: u64 = report.per_shard.iter().map(|s| s.escalated).sum();
        assert_eq!(per_shard_escalated, report.aggregate.escalated);

        // Non-cascade servers still populate the surface: everything
        // escalates and uncertainty reflects the ensemble average.
        let server = Server::start(engine(), BatchingConfig::default());
        let got = server
            .submit(&Tensor::zeros([1, 2, 2]))
            .unwrap()
            .wait()
            .unwrap();
        assert!(got.escalated);
        let report = server.shutdown();
        assert_eq!(report.aggregate.escalated, report.aggregate.requests);
        assert_eq!(report.aggregate.early_exit_rate(), 0.0);
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        // Requests admitted before shutdown must be answered, not dropped
        // with Closed — even with a batching window that would otherwise
        // hold them open.
        let server = Server::builder(plan())
            .shards(2)
            .batching(BatchingConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(200),
            })
            .start();
        let pending: Vec<_> = (0..12)
            .map(|_| server.submit(&Tensor::zeros([1, 2, 2])).unwrap())
            .collect();
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, 12, "shutdown drained the queue");
        for p in pending {
            p.wait()
                .expect("in-flight request answered during graceful shutdown");
        }
    }
}

//! Ensemble combination rules: Ensemble Averaging, Voting, and the Oracle.
//!
//! These are three of the four inference methods the paper evaluates with
//! (§3, "Evaluation metrics"); the fourth — the Super Learner — learns
//! weights and lives in [`crate::super_learner`].

use mn_tensor::{ops, Tensor};

use crate::member::MemberPredictions;

/// Per-example **max-prob confidence** of a `[N, K]` probability tensor:
/// the largest class probability of each row. High when the distribution
/// is peaked, `1/K` when it is uniform.
///
/// This is the gate signal of the serving cascade
/// ([`crate::engine::CascadePolicy`]): a calibrated threshold on
/// `1 - max_prob` decides which examples exit early.
pub fn max_prob_confidence(probs: &Tensor) -> Vec<f32> {
    let (n, k) = (probs.shape().dim(0), probs.shape().dim(1));
    (0..n)
        .map(|i| {
            probs.data()[i * k..(i + 1) * k]
                .iter()
                .fold(f32::NEG_INFINITY, |a, &b| a.max(b))
        })
        .collect()
}

/// Per-example **margin confidence** of a `[N, K]` probability tensor:
/// top-1 minus top-2 probability. 0 when the two best classes tie (a
/// maximally ambiguous prediction), near 1 when one class dominates.
///
/// For `K = 1` there is no runner-up; the margin is defined as the
/// top-1 probability itself (a one-class prediction is never ambiguous).
pub fn margin_confidence(probs: &Tensor) -> Vec<f32> {
    let (n, k) = (probs.shape().dim(0), probs.shape().dim(1));
    (0..n)
        .map(|i| {
            let row = &probs.data()[i * k..(i + 1) * k];
            let mut top1 = f32::NEG_INFINITY;
            let mut top2 = f32::NEG_INFINITY;
            for &p in row {
                if p > top1 {
                    top2 = top1;
                    top1 = p;
                } else if p > top2 {
                    top2 = p;
                }
            }
            if k < 2 {
                top1
            } else {
                top1 - top2
            }
        })
        .collect()
}

/// Ensemble Averaging (EA): the arithmetic mean of member probabilities.
pub fn ensemble_average(preds: &MemberPredictions) -> Tensor {
    let mut avg = Tensor::zeros([preds.num_examples(), preds.num_classes()]);
    for p in preds.probs() {
        avg.add_assign(p);
    }
    avg.scale(1.0 / preds.num_members() as f32);
    avg
}

/// Hard labels from averaged probabilities.
pub fn ensemble_average_labels(preds: &MemberPredictions) -> Vec<usize> {
    ops::argmax_rows(&ensemble_average(preds))
}

/// Majority voting: each member casts its argmax; ties are broken by the
/// summed probability of the tied classes.
pub fn vote_labels(preds: &MemberPredictions) -> Vec<usize> {
    let n = preds.num_examples();
    let k = preds.num_classes();
    let member_labels: Vec<Vec<usize>> = preds.probs().iter().map(ops::argmax_rows).collect();
    let avg = ensemble_average(preds);
    (0..n)
        .map(|i| {
            let mut votes = vec![0usize; k];
            for labels in &member_labels {
                votes[labels[i]] += 1;
            }
            let max_votes = *votes.iter().max().expect("non-empty vote array");
            // Tie-break among classes with max votes by mean probability.
            let mut best = 0usize;
            let mut best_prob = f32::NEG_INFINITY;
            for (c, &v) in votes.iter().enumerate() {
                if v == max_votes {
                    let p = avg.at2(i, c);
                    if p > best_prob {
                        best_prob = p;
                        best = c;
                    }
                }
            }
            best
        })
        .collect()
}

/// Oracle error rate: an item counts as correct if *any* member predicts it
/// correctly. The paper uses this to measure how much the ensemble knows as
/// a collection of specialists (Figure 10).
///
/// # Panics
///
/// Panics if `labels` length differs from the prediction count.
pub fn oracle_error(preds: &MemberPredictions, labels: &[usize]) -> f32 {
    let n = preds.num_examples();
    assert_eq!(labels.len(), n, "labels length mismatch");
    let member_labels: Vec<Vec<usize>> = preds.probs().iter().map(ops::argmax_rows).collect();
    let mut wrong = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let any_correct = member_labels.iter().any(|m| m[i] == label);
        if !any_correct {
            wrong += 1;
        }
    }
    wrong as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::MemberPredictions;

    fn preds_two_members() -> MemberPredictions {
        // Two examples, three classes.
        let a = Tensor::from_vec([2, 3], vec![0.8, 0.1, 0.1, 0.2, 0.7, 0.1]);
        let b = Tensor::from_vec([2, 3], vec![0.6, 0.3, 0.1, 0.1, 0.2, 0.7]);
        MemberPredictions::from_probs(vec![a, b])
    }

    #[test]
    fn max_prob_confidence_picks_row_maxima() {
        let probs = Tensor::from_vec([3, 3], vec![0.8, 0.1, 0.1, 0.2, 0.5, 0.3, 0.34, 0.33, 0.33]);
        let conf = max_prob_confidence(&probs);
        assert_eq!(conf, vec![0.8, 0.5, 0.34]);
        assert!(max_prob_confidence(&Tensor::zeros([0, 3])).is_empty());
    }

    #[test]
    fn margin_confidence_is_top1_minus_top2() {
        let probs = Tensor::from_vec([3, 3], vec![0.8, 0.1, 0.1, 0.2, 0.5, 0.3, 0.34, 0.33, 0.33]);
        let conf = margin_confidence(&probs);
        assert!((conf[0] - 0.7).abs() < 1e-6);
        assert!((conf[1] - 0.2).abs() < 1e-6);
        assert!((conf[2] - 0.01).abs() < 1e-6);
        // A two-way tie is maximally ambiguous: margin 0.
        let tie = Tensor::from_vec([1, 2], vec![0.5, 0.5]);
        assert_eq!(margin_confidence(&tie), vec![0.0]);
        // One class: no runner-up, the margin is the probability itself.
        let solo = Tensor::from_vec([1, 1], vec![1.0]);
        assert_eq!(margin_confidence(&solo), vec![1.0]);
    }

    #[test]
    fn average_is_elementwise_mean() {
        let avg = ensemble_average(&preds_two_members());
        assert!((avg.at2(0, 0) - 0.7).abs() < 1e-6);
        assert!((avg.at2(1, 2) - 0.4).abs() < 1e-6);
        assert_eq!(ensemble_average_labels(&preds_two_members()), vec![0, 1]);
    }

    #[test]
    fn vote_majority_wins() {
        // Three members: two vote class 1, one votes class 0.
        let m0 = Tensor::from_vec([1, 2], vec![0.9, 0.1]);
        let m1 = Tensor::from_vec([1, 2], vec![0.2, 0.8]);
        let m2 = Tensor::from_vec([1, 2], vec![0.4, 0.6]);
        let preds = MemberPredictions::from_probs(vec![m0, m1, m2]);
        assert_eq!(vote_labels(&preds), vec![1]);
    }

    #[test]
    fn vote_tie_breaks_by_probability() {
        // One member votes 0 confidently, one votes 1 weakly.
        let m0 = Tensor::from_vec([1, 2], vec![0.95, 0.05]);
        let m1 = Tensor::from_vec([1, 2], vec![0.45, 0.55]);
        let preds = MemberPredictions::from_probs(vec![m0, m1]);
        // Mean prob favors class 0 (0.70 vs 0.30).
        assert_eq!(vote_labels(&preds), vec![0]);
    }

    #[test]
    fn oracle_needs_only_one_correct_member() {
        let preds = preds_two_members();
        // Example 0: both predict 0. Example 1: member a predicts 1,
        // member b predicts 2.
        assert_eq!(oracle_error(&preds, &[0, 1]), 0.0);
        assert_eq!(oracle_error(&preds, &[0, 2]), 0.0);
        assert_eq!(oracle_error(&preds, &[1, 0]), 1.0);
        assert_eq!(oracle_error(&preds, &[0, 0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "need at least one member")]
    fn empty_ensemble_is_rejected() {
        let _ = MemberPredictions::from_probs(Vec::new());
    }

    #[test]
    fn single_member_ensemble_is_degenerate() {
        // With one member, every combiner collapses to that member.
        let p = Tensor::from_vec([3, 2], vec![0.9, 0.1, 0.3, 0.7, 0.5, 0.5]);
        let preds = MemberPredictions::from_probs(vec![p.clone()]);

        let avg = ensemble_average(&preds);
        assert_eq!(avg.data(), p.data());

        let member_labels = ops::argmax_rows(&p);
        assert_eq!(vote_labels(&preds), member_labels);

        let labels = vec![0, 0, 0];
        let member_err = mn_nn::metrics::error_rate(&member_labels, &labels);
        assert_eq!(oracle_error(&preds, &labels), member_err);
    }

    #[test]
    fn vote_tie_considers_only_tied_classes() {
        // Classes 0 and 1 tie on votes. Class 2 has the highest mean
        // probability but received no votes, so it must not win; the
        // tie-break runs among voted classes only.
        let m0 = Tensor::from_vec([1, 3], vec![0.50, 0.10, 0.40]);
        let m1 = Tensor::from_vec([1, 3], vec![0.10, 0.46, 0.44]);
        let preds = MemberPredictions::from_probs(vec![m0, m1]);
        // Mean probs: class 0 = 0.30, class 1 = 0.28, class 2 = 0.42.
        assert_eq!(vote_labels(&preds), vec![0]);
    }

    #[test]
    fn vote_three_way_tie_breaks_by_probability() {
        // Three members each vote a different class; the mean probability
        // decides.
        let m0 = Tensor::from_vec([1, 3], vec![0.80, 0.10, 0.10]);
        let m1 = Tensor::from_vec([1, 3], vec![0.00, 0.60, 0.40]);
        let m2 = Tensor::from_vec([1, 3], vec![0.00, 0.35, 0.65]);
        let preds = MemberPredictions::from_probs(vec![m0, m1, m2]);
        // Mean probs: 0.267, 0.35, 0.383 -> class 2 wins.
        assert_eq!(vote_labels(&preds), vec![2]);
    }

    #[test]
    fn oracle_never_worse_than_any_single_member() {
        let preds = preds_two_members();
        let labels = vec![0, 2];
        let oracle = oracle_error(&preds, &labels);
        for p in preds.probs() {
            let member = mn_nn::metrics::error_rate(&ops::argmax_rows(p), &labels);
            assert!(oracle <= member + 1e-6);
        }
    }
}

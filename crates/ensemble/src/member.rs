//! Ensemble members and batched prediction collection.

use mn_nn::metrics::{
    predict_proba_batched, predict_proba_batched_eval, predict_proba_batched_with,
};
use mn_nn::Network;
use mn_tensor::{Tensor, Workspace};

/// A named member of an ensemble.
#[derive(Clone, Debug)]
pub struct EnsembleMember {
    /// Human-readable name (usually the architecture name).
    pub name: String,
    /// The trained network.
    pub network: Network,
}

impl EnsembleMember {
    /// Wraps a trained network as an ensemble member.
    pub fn new(name: impl Into<String>, network: Network) -> Self {
        EnsembleMember {
            name: name.into(),
            network,
        }
    }

    /// Class-probability predictions `[N, K]` over a batch of examples.
    pub fn predict_proba(&mut self, x: &Tensor, batch_size: usize) -> Tensor {
        predict_proba_batched(&mut self.network, x, batch_size)
    }

    /// [`EnsembleMember::predict_proba`] staging all scratch in a
    /// [`Workspace`] — the per-worker hot path of
    /// [`crate::engine::InferenceEngine`].
    pub fn predict_proba_with(
        &mut self,
        x: &Tensor,
        batch_size: usize,
        ws: &mut Workspace,
    ) -> Tensor {
        predict_proba_batched_with(&mut self.network, x, batch_size, ws)
    }

    /// [`EnsembleMember::predict_proba_with`] through shared access only:
    /// eval-mode prediction never writes back into the member, so many
    /// [`crate::engine::EngineSession`] workers can execute one shared
    /// member concurrently, each with its own workspace. Bitwise identical
    /// to the `&mut` variants (same underlying code).
    pub fn predict_proba_eval(&self, x: &Tensor, batch_size: usize, ws: &mut Workspace) -> Tensor {
        predict_proba_batched_eval(&self.network, x, batch_size, ws)
    }
}

/// The collected probability predictions of every member over one data set:
/// one `[N, K]` tensor per member.
///
/// Collecting once and combining many ways is how the paper evaluates the
/// same trained ensemble under EA / Voting / SL / Oracle.
#[derive(Clone, Debug)]
pub struct MemberPredictions {
    probs: Vec<Tensor>,
}

impl MemberPredictions {
    /// Runs every member over `x` and stores the probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or members disagree on class count.
    pub fn collect(members: &mut [EnsembleMember], x: &Tensor, batch_size: usize) -> Self {
        assert!(
            !members.is_empty(),
            "cannot collect predictions of an empty ensemble"
        );
        let probs: Vec<Tensor> = members
            .iter_mut()
            .map(|m| m.predict_proba(x, batch_size))
            .collect();
        let shape = *probs[0].shape();
        assert!(
            probs.iter().all(|p| *p.shape() == shape),
            "members disagree on prediction shape"
        );
        MemberPredictions { probs }
    }

    /// Builds directly from per-member probability tensors (used by tests
    /// and by the harness when predictions are loaded from disk).
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty or shapes disagree.
    pub fn from_probs(probs: Vec<Tensor>) -> Self {
        assert!(!probs.is_empty(), "need at least one member");
        let shape = *probs[0].shape();
        assert!(
            probs.iter().all(|p| *p.shape() == shape),
            "prediction shapes disagree"
        );
        MemberPredictions { probs }
    }

    /// Number of members.
    pub fn num_members(&self) -> usize {
        self.probs.len()
    }

    /// Number of examples.
    pub fn num_examples(&self) -> usize {
        self.probs[0].shape().dim(0)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.probs[0].shape().dim(1)
    }

    /// Per-member probability tensors.
    pub fn probs(&self) -> &[Tensor] {
        &self.probs
    }

    /// A view restricted to the first `k` members (prefix ensembles are how
    /// the "error vs ensemble size" figures are produced).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k <= num_members()`.
    pub fn prefix(&self, k: usize) -> MemberPredictions {
        assert!(k > 0 && k <= self.probs.len(), "prefix {k} out of range");
        MemberPredictions {
            probs: self.probs[..k].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_nn::arch::{Architecture, InputSpec};

    fn member(seed: u64) -> EnsembleMember {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![4]);
        EnsembleMember::new(format!("m{seed}"), Network::seeded(&arch, seed))
    }

    #[test]
    fn collect_shapes() {
        let mut members = vec![member(0), member(1)];
        let x = Tensor::zeros([5, 1, 2, 2]);
        let preds = MemberPredictions::collect(&mut members, &x, 2);
        assert_eq!(preds.num_members(), 2);
        assert_eq!(preds.num_examples(), 5);
        assert_eq!(preds.num_classes(), 3);
    }

    #[test]
    fn prefix_takes_first_k() {
        let probs = vec![
            Tensor::filled([2, 2], 0.5),
            Tensor::from_vec([2, 2], vec![1.0, 0.0, 1.0, 0.0]),
        ];
        let preds = MemberPredictions::from_probs(probs);
        let p1 = preds.prefix(1);
        assert_eq!(p1.num_members(), 1);
        assert_eq!(p1.probs()[0].data(), &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "empty ensemble")]
    fn collect_rejects_empty() {
        MemberPredictions::collect(&mut [], &Tensor::zeros([1, 1, 2, 2]), 1);
    }
}

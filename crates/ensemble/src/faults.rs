//! Named fault-injection registry: the serving stack's failpoints.
//!
//! Production fault-tolerance code is exactly the code that never runs in
//! a healthy process, so it rots unless failures can be manufactured on
//! demand. This module gives every interesting failure site a *name* and
//! lets tests (and the chaos suite) arm those names with an action:
//!
//! * [`FaultAction::Panic`] — the site panics (a worker death, at the
//!   worst possible place: [`sites::QUEUE_POP`] fires while the queue
//!   mutex is held, so the panic also poisons the lock);
//! * [`FaultAction::Stall`] — the site sleeps, simulating a wedged
//!   worker, slow disk, or scheduling hiccup;
//! * [`FaultAction::Error`] — the site returns its typed error;
//! * [`FaultAction::Corrupt`] — the site flips bits in the data it just
//!   read (e.g. [`sites::ARTIFACT_READ`] corrupts the artifact bytes so
//!   the CRC check must catch them).
//!
//! Sites call [`trigger`] with their name. Disarmed sites cost one
//! relaxed atomic load; in release builds without the `failpoints`
//! feature the whole registry compiles to a no-op and [`trigger`] is a
//! constant `None`.
//!
//! The registry is process-global (failure sites are reached from worker
//! threads that tests do not own), so tests serialize through
//! [`scope`]: it holds a global lock for the test's duration and disarms
//! everything — including panic-interrupted leftovers — when dropped.
//!
//! ```
//! use mn_ensemble::faults::{self, FaultAction};
//! use std::time::Duration;
//!
//! let scope = faults::scope();
//! scope.enable_times(faults::sites::WORKER_EVAL, FaultAction::Stall(Duration::from_millis(1)), 1);
//! // ... drive a server; the first micro-batch eval stalls 1ms ...
//! assert_eq!(faults::fired(faults::sites::WORKER_EVAL), 0); // not hit yet
//! drop(scope); // everything disarmed
//! ```

use std::time::Duration;

/// The failure sites wired into the serving stack, by name.
pub mod sites {
    /// Fires when a worker dequeues a request, **while the queue mutex is
    /// held** — a panic here is the worst-case worker death (the lock is
    /// left poisoned and the popped request is dropped unanswered).
    pub const QUEUE_POP: &str = "serve.queue.pop";
    /// Fires on a worker after it closed a micro-batch, just before the
    /// engine call — a panic here orphans the whole batch.
    pub const WORKER_EVAL: &str = "serve.worker.eval";
    /// Fires after an artifact file's bytes are read, before parsing —
    /// `Corrupt` flips a payload byte (the CRC must catch it), `Error`
    /// injects an I/O failure.
    pub const ARTIFACT_READ: &str = "artifact.read";
    /// Fires on a worker after it drained the closed queue, just before
    /// its clean exit — a panic here is a death during graceful shutdown.
    pub const SHUTDOWN_DRAIN: &str = "serve.shutdown.drain";
}

/// What an armed failpoint does when its site is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the site (in whatever thread reached it).
    Panic,
    /// Sleep this long at the site, then continue normally.
    Stall(Duration),
    /// Make the site return its typed error.
    Error,
    /// Make the site corrupt the data it just produced.
    Corrupt,
}

/// Returned by [`trigger`] for the actions the *site* must apply
/// ([`FaultAction::Panic`] and [`FaultAction::Stall`] are executed by the
/// registry itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injected {
    /// The site should fail with its typed error.
    Error,
    /// The site should corrupt its data.
    Corrupt,
}

#[cfg(any(test, debug_assertions, feature = "failpoints"))]
mod imp {
    use super::{FaultAction, Injected};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct Armed {
        action: FaultAction,
        /// `None` = fire every time; `Some(n)` = fire `n` more times,
        /// then disarm.
        remaining: Option<u64>,
    }

    #[derive(Default)]
    struct Registry {
        armed: HashMap<String, Armed>,
        fired: HashMap<String, u64>,
    }

    /// Fast path: number of currently armed failpoints. Zero (the
    /// steady state) means [`trigger`] returns without taking any lock.
    static ARMED_COUNT: AtomicUsize = AtomicUsize::new(0);

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(Mutex::default)
    }

    /// Locks the registry, recovering from poisoning (an injected panic
    /// unwinding a worker can never be allowed to wedge the registry —
    /// the map is structurally valid at every panic point).
    fn lock() -> MutexGuard<'static, Registry> {
        registry().lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A test's exclusive lease on the process-global registry: arms
    /// faults, and disarms everything when dropped. See [`super::scope`].
    pub struct FaultScope {
        _serial: MutexGuard<'static, ()>,
    }

    pub fn scope() -> FaultScope {
        static SERIAL: Mutex<()> = Mutex::new(());
        // A previous test panicking mid-scope must not wedge the suite.
        let serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        FaultScope { _serial: serial }
    }

    impl FaultScope {
        /// Arms `name` to fire on every hit until disarmed.
        pub fn enable(&self, name: &str, action: FaultAction) {
            arm(name, action, None);
        }

        /// Arms `name` to fire on the next `times` hits, then disarm
        /// itself.
        pub fn enable_times(&self, name: &str, action: FaultAction, times: u64) {
            arm(name, action, Some(times));
        }

        /// Disarms `name` (hits so far stay counted).
        pub fn disable(&self, name: &str) {
            let mut reg = lock();
            if reg.armed.remove(name).is_some() {
                ARMED_COUNT.fetch_sub(1, Ordering::Release);
            }
        }
    }

    impl Drop for FaultScope {
        fn drop(&mut self) {
            reset();
        }
    }

    fn arm(name: &str, action: FaultAction, remaining: Option<u64>) {
        if remaining == Some(0) {
            return;
        }
        let mut reg = lock();
        if reg
            .armed
            .insert(name.to_string(), Armed { action, remaining })
            .is_none()
        {
            ARMED_COUNT.fetch_add(1, Ordering::Release);
        }
    }

    fn reset() {
        let mut reg = lock();
        reg.armed.clear();
        reg.fired.clear();
        ARMED_COUNT.store(0, Ordering::Release);
    }

    pub fn fired(name: &str) -> u64 {
        lock().fired.get(name).copied().unwrap_or(0)
    }

    pub fn trigger(name: &str) -> Option<Injected> {
        if ARMED_COUNT.load(Ordering::Acquire) == 0 {
            return None;
        }
        let action = {
            let mut reg = lock();
            let action = match reg.armed.get_mut(name) {
                Some(armed) => {
                    let action = armed.action;
                    let disarm = match &mut armed.remaining {
                        Some(n) => {
                            *n -= 1;
                            *n == 0
                        }
                        None => false,
                    };
                    if disarm {
                        reg.armed.remove(name);
                        ARMED_COUNT.fetch_sub(1, Ordering::Release);
                    }
                    action
                }
                None => return None,
            };
            *reg.fired.entry(name.to_string()).or_insert(0) += 1;
            action
        };
        match action {
            FaultAction::Panic => panic!("injected fault: {name}"),
            FaultAction::Stall(d) => {
                std::thread::sleep(d);
                None
            }
            FaultAction::Error => Some(Injected::Error),
            FaultAction::Corrupt => Some(Injected::Corrupt),
        }
    }
}

#[cfg(not(any(test, debug_assertions, feature = "failpoints")))]
mod imp {
    use super::{FaultAction, Injected};

    /// No-op stand-in: release builds without the `failpoints` feature
    /// carry no registry at all.
    pub struct FaultScope {}

    pub fn scope() -> FaultScope {
        FaultScope {}
    }

    impl FaultScope {
        pub fn enable(&self, _name: &str, _action: FaultAction) {}
        pub fn enable_times(&self, _name: &str, _action: FaultAction, _times: u64) {}
        pub fn disable(&self, _name: &str) {}
    }

    pub fn fired(_name: &str) -> u64 {
        0
    }

    #[inline(always)]
    pub fn trigger(_name: &str) -> Option<Injected> {
        None
    }
}

pub use imp::FaultScope;

/// Takes the process-global fault lease: arms nothing yet, but
/// serializes fault-using tests against each other and guarantees every
/// failpoint is disarmed when the returned scope drops. All arming goes
/// through the scope ([`FaultScope::enable`] /
/// [`FaultScope::enable_times`] / [`FaultScope::disable`]) so a test
/// cannot leak an armed fault into its neighbors.
pub fn scope() -> FaultScope {
    imp::scope()
}

/// How many times the failpoint `name` has fired under the current
/// [`scope`] (0 when disarmed the whole time, or in no-op builds).
pub fn fired(name: &str) -> u64 {
    imp::fired(name)
}

/// Called by failure sites: executes `name`'s armed action, if any.
/// Panics/stalls happen inside; `Error`/`Corrupt` are returned for the
/// site to apply. Disarmed (the steady state): one atomic load, `None`.
pub fn trigger(name: &str) -> Option<Injected> {
    imp::trigger(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_are_silent() {
        let _scope = scope();
        assert_eq!(trigger("nope"), None);
        assert_eq!(fired("nope"), 0);
    }

    #[test]
    fn counted_faults_fire_then_disarm() {
        let scope = scope();
        scope.enable_times("x", FaultAction::Error, 2);
        assert_eq!(trigger("x"), Some(Injected::Error));
        assert_eq!(trigger("x"), Some(Injected::Error));
        assert_eq!(trigger("x"), None, "fault disarms after its budget");
        assert_eq!(fired("x"), 2);
    }

    #[test]
    fn unlimited_faults_fire_until_disabled() {
        let scope = scope();
        scope.enable("y", FaultAction::Corrupt);
        for _ in 0..5 {
            assert_eq!(trigger("y"), Some(Injected::Corrupt));
        }
        scope.disable("y");
        assert_eq!(trigger("y"), None);
        assert_eq!(fired("y"), 5);
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let scope = scope();
        scope.enable_times("z", FaultAction::Panic, 1);
        let err = std::panic::catch_unwind(|| trigger("z")).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("injected fault: z"), "got: {msg}");
        assert_eq!(trigger("z"), None, "one-shot panic disarmed itself");
    }

    #[test]
    fn stall_action_delays_then_continues() {
        let scope = scope();
        let d = Duration::from_millis(20);
        scope.enable_times("s", FaultAction::Stall(d), 1);
        let t0 = std::time::Instant::now();
        assert_eq!(trigger("s"), None, "stall is executed, not returned");
        assert!(t0.elapsed() >= d);
    }

    #[test]
    fn scope_drop_disarms_everything() {
        {
            let scope = scope();
            scope.enable("leak", FaultAction::Panic);
        }
        let _scope = scope();
        assert_eq!(trigger("leak"), None, "dropped scope disarmed the fault");
    }
}

//! End-to-end lockdown of the quantized serving hand-off: a trained
//! ensemble saved under each [`WeightEncoding`] must (a) shrink the
//! artifact by the documented ratio, (b) cold-start an [`EnginePlan`]
//! through the unchanged load path, and (c) serve predictions within a
//! pinned drift of the full-precision artifact — with `f32` remaining
//! bitwise exact.

use mn_data::presets::{cifar10_sim, Scale};
use mn_ensemble::engine::EnginePlan;
use mn_ensemble::WeightEncoding;
use mn_nn::arch::{Architecture, InputSpec};
use mn_nn::train::TrainConfig;
use mothernets::training::{train_ensemble, EnsembleTrainConfig, Strategy};
use mothernets::TrainedEnsemble;

fn trained() -> TrainedEnsemble {
    let input = InputSpec::new(3, 8, 8);
    let archs = vec![
        Architecture::mlp("small", input, 10, vec![12]),
        Architecture::mlp("large", input, 10, vec![16]),
    ];
    let cfg = EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 1,
            batch_size: 32,
            ..TrainConfig::default()
        },
        val_fraction: 0.2,
        seed: 7,
        parallel: false,
    };
    let task = cifar10_sim(Scale::Tiny, 9);
    train_ensemble(&archs, &task.train, &Strategy::FullData, &cfg).unwrap()
}

/// Pinned end-to-end drift tolerances, derived from the per-encoding
/// round-trip bounds in `mn-tensor`'s `quant_props` suite amplified
/// through two small MLP layers. If these move, quantization regressed.
const F16_SERVE_DRIFT: f32 = 2e-3;
const I8_SERVE_DRIFT: f32 = 5e-2;

#[test]
fn quantized_artifacts_shrink_and_serve_within_drift() {
    let trained = trained();
    let f32_bytes = trained.to_artifact_bytes();
    let f16_bytes = trained
        .to_artifact_bytes_quantized(WeightEncoding::F16)
        .unwrap();
    let i8_bytes = trained
        .to_artifact_bytes_quantized(WeightEncoding::I8)
        .unwrap();

    // (a) Size: the ISSUE-pinned deployment ratios.
    let f16_ratio = f16_bytes.len() as f64 / f32_bytes.len() as f64;
    let i8_ratio = i8_bytes.len() as f64 / f32_bytes.len() as f64;
    assert!(f16_ratio <= 0.55, "f16 artifact ratio {f16_ratio:.3}");
    assert!(i8_ratio <= 0.30, "i8 artifact ratio {i8_ratio:.3}");

    // The f32 "quantized" artifact is byte-identical to the legacy one.
    assert_eq!(
        trained
            .to_artifact_bytes_quantized(WeightEncoding::F32)
            .unwrap(),
        f32_bytes
    );

    // (b)+(c) Cold-start each artifact and compare served probabilities
    // on a held-out batch.
    let task = cifar10_sim(Scale::Tiny, 10);
    let x = task.test.images();
    let reference = EnginePlan::from_artifact_bytes(&f32_bytes, 16)
        .unwrap()
        .into_shared()
        .session()
        .predict_average(x);
    for (bytes, tol, label) in [
        (&f16_bytes, F16_SERVE_DRIFT, "f16"),
        (&i8_bytes, I8_SERVE_DRIFT, "i8"),
    ] {
        let served = EnginePlan::from_artifact_bytes(bytes, 16)
            .unwrap()
            .into_shared()
            .session()
            .predict_average(x);
        let drift = mn_tensor::max_abs_diff(reference.data(), served.data());
        assert!(
            drift <= tol,
            "{label} served probabilities drift {drift} > {tol}"
        );
        assert!(drift > 0.0, "{label} artifact is suspiciously lossless");
    }
}

#[test]
fn quantized_artifact_file_round_trips_through_engine_load() {
    let trained = trained();
    let dir = std::env::temp_dir().join(format!("mn_quant_artifact_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ensemble_i8.mne");
    trained.save_quantized(&path, WeightEncoding::I8).unwrap();

    let plan = EnginePlan::load(&path, 16).unwrap();
    assert_eq!(plan.members().len(), trained.members.len());
    // Resident weights stay f32 regardless of the artifact encoding.
    let mut elements = 0usize;
    for m in &trained.members {
        for node in m.network.nodes() {
            node.visit_state(&mut |t| elements += t.len());
        }
    }
    assert_eq!(plan.param_bytes(), elements * 4);
    // The i8 file on disk is at most 0.30x the f32 artifact.
    let disk = std::fs::metadata(&path).unwrap().len() as f64;
    let full = trained.to_artifact_bytes().len() as f64;
    assert!(disk / full <= 0.30, "i8 file ratio {:.3}", disk / full);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quantized_save_rejects_poisoned_member() {
    let mut trained = trained();
    let mut poisoned = false;
    'outer: for node in trained.members[0].network.nodes_mut() {
        for t in node.state_mut() {
            if !t.is_empty() {
                t.data_mut()[0] = f32::INFINITY;
                poisoned = true;
                break 'outer;
            }
        }
    }
    assert!(poisoned, "no stateful tensor found to poison");
    let err = trained
        .to_artifact_bytes_quantized(WeightEncoding::F16)
        .unwrap_err();
    assert!(
        matches!(err, mn_ensemble::ArtifactError::Member { index: 0, .. }),
        "unexpected error: {err:?}"
    );
}

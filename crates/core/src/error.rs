//! Error type of the MotherNets pipeline.

use std::fmt;

use mn_morph::MorphError;
use mn_nn::arch::ArchError;

/// Why a MotherNets operation failed.
#[derive(Clone, PartialEq, Debug)]
pub enum MotherNetsError {
    /// An empty ensemble was supplied.
    EmptyEnsemble,
    /// Ensemble members cannot share a MotherNet (different family, input,
    /// class count, or block count).
    IncompatibleMembers {
        /// Human-readable reason.
        reason: String,
    },
    /// A constructed or supplied architecture failed validation.
    InvalidArchitecture(ArchError),
    /// Hatching a member from its MotherNet failed.
    Hatch(MorphError),
    /// A configuration parameter was out of range.
    InvalidParameter {
        /// Which parameter.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// The supplied data set does not match the ensemble's input geometry
    /// or class count.
    DataMismatch {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for MotherNetsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MotherNetsError::EmptyEnsemble => write!(f, "ensemble is empty"),
            MotherNetsError::IncompatibleMembers { reason } => {
                write!(f, "incompatible ensemble members: {reason}")
            }
            MotherNetsError::InvalidArchitecture(e) => write!(f, "invalid architecture: {e}"),
            MotherNetsError::Hatch(e) => write!(f, "hatching failed: {e}"),
            MotherNetsError::InvalidParameter { what, value } => {
                write!(f, "invalid parameter {what} = {value}")
            }
            MotherNetsError::DataMismatch { reason } => {
                write!(f, "data set does not match ensemble: {reason}")
            }
        }
    }
}

impl std::error::Error for MotherNetsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MotherNetsError::InvalidArchitecture(e) => Some(e),
            MotherNetsError::Hatch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for MotherNetsError {
    fn from(e: ArchError) -> Self {
        MotherNetsError::InvalidArchitecture(e)
    }
}

impl From<MorphError> for MotherNetsError {
    fn from(e: MorphError) -> Self {
        MotherNetsError::Hatch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            MotherNetsError::EmptyEnsemble.to_string(),
            "ensemble is empty"
        );
        let e = MotherNetsError::InvalidParameter {
            what: "tau".into(),
            value: 2.0,
        };
        assert!(e.to_string().contains("tau"));
    }
}

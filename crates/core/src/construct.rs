//! MotherNet construction (paper §2.1).
//!
//! Given an ensemble of architectures, the MotherNet is the largest network
//! from which every member can be obtained by function-preserving
//! transformations. Construction is purely structural:
//!
//! * **Fully-connected** ensembles: the MotherNet has as many hidden layers
//!   as the shallowest member, and its *i*-th layer is the smallest *i*-th
//!   layer of any member.
//! * **Convolutional (plain/VGG-style)** ensembles: built block-by-block —
//!   each MotherNet block has as many layers as the member with the fewest
//!   layers in that block, and each layer position takes the minimum filter
//!   count and smallest filter size at that position (Figure 4).
//! * **Residual** ensembles: per stage, the minimum unit count, width, and
//!   kernel size.

use mn_morph::check_compatible;
use mn_nn::arch::{Architecture, Body, ConvBlockSpec, ConvLayerSpec, ResBlockSpec};

use crate::error::MotherNetsError;

/// Constructs the MotherNet of an ensemble of architectures.
///
/// The result is guaranteed (and tested) to be expandable into every member
/// by function-preserving transformations, and to be no larger than the
/// smallest member.
///
/// # Errors
///
/// Returns [`MotherNetsError::EmptyEnsemble`] for an empty slice, or
/// [`MotherNetsError::IncompatibleMembers`] when members differ in family,
/// input geometry, class count, or block count.
///
/// # Examples
///
/// ```
/// use mn_nn::arch::{Architecture, InputSpec};
/// use mothernets::construct::mothernet_of;
///
/// let members = vec![
///     Architecture::mlp("a", InputSpec::new(3, 8, 8), 10, vec![32, 16]),
///     Architecture::mlp("b", InputSpec::new(3, 8, 8), 10, vec![16, 24]),
/// ];
/// let mother = mothernet_of(&members, "mother").unwrap();
/// // Per-position minima (16, 16) — no larger than either member.
/// assert!(mother.param_count() <= members[1].param_count());
/// ```
///
/// ## Reachability
///
/// Deepening inserts identity layers at the *end* of a block (or of the
/// hidden-layer chain), matching how the paper's VGG variants deepen.
/// An inserted identity layer cannot narrow its input, so a member whose
/// extra (beyond-MotherNet-depth) layers narrow is not hatchable from a
/// shallower MotherNet; in that case this function returns
/// [`MotherNetsError::Hatch`] and the clustering algorithm places such
/// members in smaller clusters (ultimately singletons, which always
/// succeed).
pub fn mothernet_of(members: &[Architecture], name: &str) -> Result<Architecture, MotherNetsError> {
    let first = members.first().ok_or(MotherNetsError::EmptyEnsemble)?;
    for m in members {
        m.validate()?;
        if m.input != first.input {
            return Err(MotherNetsError::IncompatibleMembers {
                reason: format!("{} has different input geometry", m.name),
            });
        }
        if m.num_classes != first.num_classes {
            return Err(MotherNetsError::IncompatibleMembers {
                reason: format!("{} has different class count", m.name),
            });
        }
        if m.family() != first.family() {
            return Err(MotherNetsError::IncompatibleMembers {
                reason: format!(
                    "{} is {} but {} is {}",
                    m.name,
                    m.family(),
                    first.name,
                    first.family()
                ),
            });
        }
    }

    let body = match &first.body {
        Body::Mlp { .. } => {
            let hiddens: Vec<&Vec<usize>> = members
                .iter()
                .map(|m| match &m.body {
                    Body::Mlp { hidden } => hidden,
                    _ => unreachable!("family checked above"),
                })
                .collect();
            let depth = hiddens.iter().map(|h| h.len()).min().expect("non-empty");
            let hidden = (0..depth)
                .map(|i| hiddens.iter().map(|h| h[i]).min().expect("non-empty"))
                .collect();
            Body::Mlp { hidden }
        }
        Body::Plain {
            blocks: first_blocks,
            ..
        } => {
            let bodies: Vec<(&Vec<ConvBlockSpec>, &Vec<usize>)> = members
                .iter()
                .map(|m| match &m.body {
                    Body::Plain { blocks, dense } => (blocks, dense),
                    _ => unreachable!("family checked above"),
                })
                .collect();
            for (m, (blocks, _)) in members.iter().zip(&bodies) {
                if blocks.len() != first_blocks.len() {
                    return Err(MotherNetsError::IncompatibleMembers {
                        reason: format!(
                            "{} has {} blocks, expected {}",
                            m.name,
                            blocks.len(),
                            first_blocks.len()
                        ),
                    });
                }
            }
            let mut blocks = Vec::with_capacity(first_blocks.len());
            for bi in 0..first_blocks.len() {
                let depth = bodies
                    .iter()
                    .map(|(bs, _)| bs[bi].layers.len())
                    .min()
                    .expect("non-empty");
                let layers = (0..depth)
                    .map(|li| {
                        let filters = bodies
                            .iter()
                            .map(|(bs, _)| bs[bi].layers[li].filters)
                            .min()
                            .expect("non-empty");
                        let filter_size = bodies
                            .iter()
                            .map(|(bs, _)| bs[bi].layers[li].filter_size)
                            .min()
                            .expect("non-empty");
                        ConvLayerSpec::new(filter_size, filters)
                    })
                    .collect();
                blocks.push(ConvBlockSpec::new(layers));
            }
            let dense_depth = bodies
                .iter()
                .map(|(_, d)| d.len())
                .min()
                .expect("non-empty");
            let dense = (0..dense_depth)
                .map(|i| bodies.iter().map(|(_, d)| d[i]).min().expect("non-empty"))
                .collect();
            Body::Plain { blocks, dense }
        }
        Body::Residual {
            blocks: first_blocks,
        } => {
            let bodies: Vec<&Vec<ResBlockSpec>> = members
                .iter()
                .map(|m| match &m.body {
                    Body::Residual { blocks } => blocks,
                    _ => unreachable!("family checked above"),
                })
                .collect();
            for (m, blocks) in members.iter().zip(&bodies) {
                if blocks.len() != first_blocks.len() {
                    return Err(MotherNetsError::IncompatibleMembers {
                        reason: format!(
                            "{} has {} stages, expected {}",
                            m.name,
                            blocks.len(),
                            first_blocks.len()
                        ),
                    });
                }
            }
            let blocks = (0..first_blocks.len())
                .map(|bi| {
                    ResBlockSpec::new(
                        bodies
                            .iter()
                            .map(|bs| bs[bi].units)
                            .min()
                            .expect("non-empty"),
                        bodies
                            .iter()
                            .map(|bs| bs[bi].filters)
                            .min()
                            .expect("non-empty"),
                        bodies
                            .iter()
                            .map(|bs| bs[bi].filter_size)
                            .min()
                            .expect("non-empty"),
                    )
                })
                .collect();
            Body::Residual { blocks }
        }
    };

    let mother = Architecture {
        name: name.to_string(),
        input: first.input,
        num_classes: first.num_classes,
        body,
    };
    mother.validate()?;
    // Post-condition: every member must be reachable from the MotherNet by
    // function-preserving expansion. This is guaranteed by per-position
    // minima; the check converts any latent bug into an error.
    for m in members {
        check_compatible(&mother, m)?;
    }
    Ok(mother)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_nn::arch::InputSpec;

    fn input() -> InputSpec {
        InputSpec::new(3, 8, 8)
    }

    #[test]
    fn mlp_mothernet_takes_minima() {
        let members = vec![
            Architecture::mlp("a", input(), 10, vec![32, 16]),
            Architecture::mlp("b", input(), 10, vec![16, 24]),
        ];
        let mother = mothernet_of(&members, "m").unwrap();
        match &mother.body {
            Body::Mlp { hidden } => assert_eq!(hidden, &vec![16, 16]),
            _ => panic!("wrong family"),
        }
    }

    #[test]
    fn mlp_mothernet_uses_shallowest_depth() {
        // Deeper member's extra layers are non-narrowing, so reachable.
        let members = vec![
            Architecture::mlp("a", input(), 10, vec![16, 24, 24]),
            Architecture::mlp("b", input(), 10, vec![20, 20]),
        ];
        let mother = mothernet_of(&members, "m").unwrap();
        match &mother.body {
            Body::Mlp { hidden } => assert_eq!(hidden, &vec![16, 20]),
            _ => panic!("wrong family"),
        }
    }

    #[test]
    fn unreachable_member_yields_hatch_error() {
        // Member "a" narrows in its extra layer (16 -> 8): not hatchable
        // from a 2-layer MotherNet by end-insertion deepening.
        let members = vec![
            Architecture::mlp("a", input(), 10, vec![32, 16, 8]),
            Architecture::mlp("b", input(), 10, vec![16, 24]),
        ];
        assert!(matches!(
            mothernet_of(&members, "m"),
            Err(MotherNetsError::Hatch(_))
        ));
    }

    #[test]
    fn plain_mothernet_is_blockwise_minimum() {
        // Mirrors the paper's Figure 4 example structure.
        let n1 = Architecture::plain(
            "n1",
            input(),
            10,
            vec![
                ConvBlockSpec::new(vec![ConvLayerSpec::new(3, 64), ConvLayerSpec::new(3, 64)]),
                ConvBlockSpec::new(vec![
                    ConvLayerSpec::new(3, 64),
                    ConvLayerSpec::new(5, 64),
                    ConvLayerSpec::new(1, 64),
                ]),
            ],
            vec![64],
        );
        let n2 = Architecture::plain(
            "n2",
            input(),
            10,
            vec![
                ConvBlockSpec::new(vec![ConvLayerSpec::new(3, 32), ConvLayerSpec::new(1, 64)]),
                ConvBlockSpec::new(vec![ConvLayerSpec::new(3, 72), ConvLayerSpec::new(3, 64)]),
            ],
            vec![48, 64],
        );
        let mother = mothernet_of(&[n1, n2], "m").unwrap();
        match &mother.body {
            Body::Plain { blocks, dense } => {
                assert_eq!(
                    blocks[0].layers,
                    vec![ConvLayerSpec::new(3, 32), ConvLayerSpec::new(1, 64)]
                );
                assert_eq!(
                    blocks[1].layers,
                    vec![ConvLayerSpec::new(3, 64), ConvLayerSpec::new(3, 64)]
                );
                assert_eq!(dense, &vec![48]);
            }
            _ => panic!("wrong family"),
        }
    }

    #[test]
    fn residual_mothernet_minima() {
        let a = Architecture::residual(
            "a",
            input(),
            10,
            vec![ResBlockSpec::new(2, 8, 3), ResBlockSpec::new(3, 16, 3)],
        );
        let b = Architecture::residual(
            "b",
            input(),
            10,
            vec![ResBlockSpec::new(3, 4, 5), ResBlockSpec::new(2, 32, 3)],
        );
        let mother = mothernet_of(&[a, b], "m").unwrap();
        match &mother.body {
            Body::Residual { blocks } => {
                assert_eq!(blocks[0], ResBlockSpec::new(2, 4, 3));
                assert_eq!(blocks[1], ResBlockSpec::new(2, 16, 3));
            }
            _ => panic!("wrong family"),
        }
    }

    #[test]
    fn mothernet_not_larger_than_smallest_member() {
        let members = vec![
            Architecture::mlp("a", input(), 10, vec![32, 32]),
            Architecture::mlp("b", input(), 10, vec![16, 32]),
            Architecture::mlp("c", input(), 10, vec![64]),
        ];
        let mother = mothernet_of(&members, "m").unwrap();
        let min_size = members.iter().map(|m| m.param_count()).min().unwrap();
        assert!(mother.param_count() <= min_size);
    }

    #[test]
    fn singleton_ensemble_returns_member_structure() {
        let a = Architecture::mlp("a", input(), 10, vec![12, 8]);
        let mother = mothernet_of(std::slice::from_ref(&a), "m").unwrap();
        assert_eq!(mother.body, a.body);
        assert_eq!(mother.param_count(), a.param_count());
    }

    #[test]
    fn rejects_empty_and_mixed() {
        assert!(matches!(
            mothernet_of(&[], "m"),
            Err(MotherNetsError::EmptyEnsemble)
        ));
        let mlp = Architecture::mlp("a", input(), 10, vec![8]);
        let plain = Architecture::plain(
            "b",
            input(),
            10,
            vec![ConvBlockSpec::repeated(3, 4, 1)],
            vec![],
        );
        assert!(matches!(
            mothernet_of(&[mlp.clone(), plain], "m"),
            Err(MotherNetsError::IncompatibleMembers { .. })
        ));
        let other_input = Architecture::mlp("c", InputSpec::new(1, 8, 8), 10, vec![8]);
        assert!(mothernet_of(&[mlp.clone(), other_input], "m").is_err());
        let other_classes = Architecture::mlp("d", input(), 5, vec![8]);
        assert!(mothernet_of(&[mlp, other_classes], "m").is_err());
    }

    #[test]
    fn rejects_block_count_mismatch() {
        let a = Architecture::plain(
            "a",
            input(),
            10,
            vec![ConvBlockSpec::repeated(3, 4, 1)],
            vec![],
        );
        let b = Architecture::plain(
            "b",
            input(),
            10,
            vec![
                ConvBlockSpec::repeated(3, 4, 1),
                ConvBlockSpec::repeated(3, 4, 1),
            ],
            vec![],
        );
        assert!(matches!(
            mothernet_of(&[a, b], "m"),
            Err(MotherNetsError::IncompatibleMembers { .. })
        ));
    }
}

//! # mothernets
//!
//! A Rust reproduction of **MotherNets: Rapid Deep Ensemble Learning**
//! (Wasay, Liao, Idreos — MLSYS 2020): train very large ensembles of
//! structurally diverse neural networks at a fraction of the cost of
//! training every member from scratch.
//!
//! The pipeline (paper §2):
//!
//! 1. [`construct::mothernet_of`] — build the MotherNet that captures the
//!    largest structural commonality of the ensemble;
//! 2. [`cluster::cluster_architectures`] — when member sizes vary widely,
//!    split the ensemble into the minimum number of clusters whose members
//!    each inherit at least a τ-fraction of parameters (Algorithm 1);
//! 3. train each MotherNet once on the full data (low bias);
//! 4. [`hatch::hatch`] — expand the trained MotherNet into every member via
//!    function-preserving transformations (`mn-morph`);
//! 5. fine-tune each member on a bootstrap resample (diversity).
//!
//! [`training::train_ensemble`] runs the whole pipeline — or either
//! baseline ([`training::Strategy::FullData`],
//! [`training::Strategy::Bagging`]) — with per-network cost accounting.
//!
//! ## Quickstart
//!
//! ```
//! use mn_data::presets::{cifar10_sim, Scale};
//! use mn_nn::arch::{Architecture, InputSpec};
//! use mothernets::prelude::*;
//!
//! // Three small MLP members of different sizes.
//! let input = InputSpec::new(3, 8, 8);
//! let archs = vec![
//!     Architecture::mlp("small", input, 10, vec![16]),
//!     Architecture::mlp("medium", input, 10, vec![24]),
//!     Architecture::mlp("large", input, 10, vec![32]),
//! ];
//!
//! let task = cifar10_sim(Scale::Tiny, 0);
//! let cfg = EnsembleTrainConfig {
//!     train: mn_nn::train::TrainConfig { max_epochs: 2, ..Default::default() },
//!     ..Default::default()
//! };
//! let trained =
//!     train_ensemble(&archs, &task.train, &Strategy::mothernets(), &cfg).unwrap();
//! assert_eq!(trained.members.len(), 3);
//! assert_eq!(trained.mothernets.len(), trained.clustering.as_ref().unwrap().len());
//! ```

pub mod cluster;
pub mod construct;
pub mod error;
pub mod hatch;
pub mod training;

pub use cluster::{cluster_architectures, Cluster, Clustering};
pub use construct::mothernet_of;
pub use error::MotherNetsError;
pub use hatch::{hatch, hatch_with_report, HatchReport};
pub use training::{
    train_ensemble, EnsembleTrainConfig, MemberRecord, MemberTraining, MotherNetsStrategy, Phase,
    SnapshotStrategy, Strategy, TrainedEnsemble,
};

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use crate::cluster::{cluster_architectures, Clustering};
    pub use crate::construct::mothernet_of;
    pub use crate::error::MotherNetsError;
    pub use crate::hatch::{hatch, hatch_with_report};
    pub use crate::training::{
        train_ensemble, EnsembleTrainConfig, MemberTraining, MotherNetsStrategy, Phase,
        SnapshotStrategy, Strategy, TrainedEnsemble,
    };
}

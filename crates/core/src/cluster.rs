//! τ-clustering of ensembles (paper §2.3, Algorithm 1).
//!
//! When ensemble members differ a lot in size, a single MotherNet would
//! capture too little structure. The paper therefore partitions the
//! ensemble into clusters — each with its own MotherNet — such that every
//! member inherits enough parameters from its cluster's MotherNet.
//!
//! ## The clustering condition and τ
//!
//! We require, for every member `C` of a cluster with MotherNet `M`:
//!
//! ```text
//! |C| − |M| ≤ (1 − τ) · |C|      (equivalently |M| ≥ τ·|C|)
//! ```
//!
//! i.e. **τ is the minimum fraction of each member's parameters that must
//! originate from its MotherNet**. This follows the paper's prose ("for
//! every ensemble network, at least a fraction τ of its parameters
//! originate from its MotherNet", and the §3 setting "τ to 0.5 such that a
//! majority of the parameters … originates from its MotherNet") and its
//! extremes (τ = 1 → every network its own MotherNet; τ → 0 → one
//! cluster). The inequality printed in the paper's §2.3 (`|C|−|M| < τ·|C|`)
//! is inconsistent with those extremes; at the paper's operating point
//! τ = 0.5 the two readings coincide.
//!
//! ## Algorithm
//!
//! As in the paper's Algorithm 1, members are sorted by parameter count and
//! greedily packed into consecutive runs: feasibility of a candidate
//! cluster is checked by *constructing its MotherNet* and testing the
//! condition for every member — not by a size proxy. Because feasibility is
//! downward-closed on consecutive runs (removing a member can only grow the
//! MotherNet), the greedy longest-prefix packing yields the minimum number
//! of clusters; `min_clusters_exhaustive` is the brute-force oracle used to
//! property-test that claim.

use mn_nn::arch::Architecture;

use crate::construct::mothernet_of;
use crate::error::MotherNetsError;

/// One cluster: the member indices (into the original ensemble slice) and
/// the cluster's MotherNet.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Indices of the members assigned to this cluster, ascending by size.
    pub member_indices: Vec<usize>,
    /// The cluster's MotherNet.
    pub mothernet: Architecture,
}

/// The result of clustering an ensemble.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// The clusters, in ascending size order.
    pub clusters: Vec<Cluster>,
    /// The τ used.
    pub tau: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters (only for an empty ensemble, which is
    /// rejected earlier — present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster index that member `i` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `i` was not part of the clustered ensemble.
    pub fn cluster_of(&self, i: usize) -> usize {
        self.clusters
            .iter()
            .position(|c| c.member_indices.contains(&i))
            .unwrap_or_else(|| panic!("member {i} not in any cluster"))
    }
}

/// Does `member` satisfy the clustering condition under `mothernet`?
pub fn satisfies_condition(member: &Architecture, mothernet: &Architecture, tau: f64) -> bool {
    let c = member.param_count() as f64;
    let m = mothernet.param_count() as f64;
    c - m <= (1.0 - tau) * c
}

/// Clusters an ensemble with parameter τ ∈ (0, 1] (Algorithm 1).
///
/// # Errors
///
/// Returns [`MotherNetsError::InvalidParameter`] for τ outside `(0, 1]`,
/// [`MotherNetsError::EmptyEnsemble`] for an empty slice, and propagates
/// incompatibility errors from MotherNet construction.
pub fn cluster_architectures(
    members: &[Architecture],
    tau: f64,
) -> Result<Clustering, MotherNetsError> {
    if !(tau > 0.0 && tau <= 1.0) {
        return Err(MotherNetsError::InvalidParameter {
            what: "tau".into(),
            value: tau,
        });
    }
    if members.is_empty() {
        return Err(MotherNetsError::EmptyEnsemble);
    }

    // Sort indices ascending by parameter count (ties by index for
    // determinism).
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by_key(|&i| (members[i].param_count(), i));

    let mut clusters: Vec<Cluster> = Vec::new();
    let mut start = 0usize;
    while start < order.len() {
        // Greedily extend the cluster while the condition holds.
        let mut end = start + 1; // [start, end) is always feasible
        let mut best_mother = mothernet_of(
            &[members[order[start]].clone()],
            &format!("mothernet-{}", clusters.len()),
        )?;
        while end < order.len() {
            let candidate: Vec<Architecture> = order[start..=end]
                .iter()
                .map(|&i| members[i].clone())
                .collect();
            // A reachability failure (a member not hatchable from the
            // candidate MotherNet) makes the candidate infeasible, exactly
            // like a size-condition violation; structural incompatibility
            // (family/input/classes) is a hard error.
            let mother = match mothernet_of(&candidate, &format!("mothernet-{}", clusters.len())) {
                Ok(m) => Some(m),
                Err(MotherNetsError::Hatch(_)) => None,
                Err(e) => return Err(e),
            };
            let ok = mother
                .as_ref()
                .is_some_and(|m| candidate.iter().all(|c| satisfies_condition(c, m, tau)));
            if ok {
                best_mother = mother.expect("checked above");
                end += 1;
            } else {
                break;
            }
        }
        clusters.push(Cluster {
            member_indices: order[start..end].to_vec(),
            mothernet: best_mother,
        });
        start = end;
    }
    Ok(Clustering { clusters, tau })
}

/// Brute-force minimum number of clusters over *consecutive runs* of the
/// size-sorted ensemble, by dynamic programming. Exponentially safer than
/// enumerating all partitions and exact for this problem (the paper's §2.3
/// ordering argument shows only consecutive runs need be considered).
///
/// Exposed for tests and for the clustering ablation bench.
///
/// # Errors
///
/// As [`cluster_architectures`].
pub fn min_clusters_exhaustive(
    members: &[Architecture],
    tau: f64,
) -> Result<usize, MotherNetsError> {
    if !(tau > 0.0 && tau <= 1.0) {
        return Err(MotherNetsError::InvalidParameter {
            what: "tau".into(),
            value: tau,
        });
    }
    if members.is_empty() {
        return Err(MotherNetsError::EmptyEnsemble);
    }
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by_key(|&i| (members[i].param_count(), i));
    let n = order.len();

    // feasible[i][j]: run [i, j] can form one cluster.
    let mut feasible = vec![vec![false; n]; n];
    for i in 0..n {
        for j in i..n {
            let run: Vec<Architecture> = order[i..=j].iter().map(|&k| members[k].clone()).collect();
            feasible[i][j] = match mothernet_of(&run, "probe") {
                Ok(mother) => run.iter().all(|c| satisfies_condition(c, &mother, tau)),
                Err(MotherNetsError::Hatch(_)) => false,
                Err(e) => return Err(e),
            };
        }
    }
    // dp[i] = min clusters covering [i, n).
    let mut dp = vec![usize::MAX; n + 1];
    dp[n] = 0;
    for i in (0..n).rev() {
        for j in i..n {
            if feasible[i][j] && dp[j + 1] != usize::MAX {
                dp[i] = dp[i].min(1 + dp[j + 1]);
            }
        }
    }
    Ok(dp[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_nn::arch::InputSpec;

    fn mlp(name: &str, widths: Vec<usize>) -> Architecture {
        Architecture::mlp(name, InputSpec::new(3, 8, 8), 10, widths)
    }

    #[test]
    fn single_cluster_when_sizes_close() {
        let members = vec![mlp("a", vec![32]), mlp("b", vec![34]), mlp("c", vec![36])];
        let clustering = cluster_architectures(&members, 0.5).unwrap();
        assert_eq!(clustering.len(), 1);
        assert_eq!(clustering.clusters[0].member_indices.len(), 3);
    }

    #[test]
    fn tau_one_forces_singletons_for_distinct_sizes() {
        let members = vec![mlp("a", vec![16]), mlp("b", vec![32]), mlp("c", vec![64])];
        let clustering = cluster_architectures(&members, 1.0).unwrap();
        assert_eq!(clustering.len(), 3);
        for c in &clustering.clusters {
            assert_eq!(c.member_indices.len(), 1);
        }
    }

    #[test]
    fn tiny_tau_gives_one_cluster() {
        let members = vec![mlp("a", vec![8]), mlp("b", vec![128]), mlp("c", vec![512])];
        let clustering = cluster_architectures(&members, 0.01).unwrap();
        assert_eq!(clustering.len(), 1);
    }

    #[test]
    fn disparate_sizes_split_at_half_tau() {
        // Sizes differ by far more than 2x: must split under tau = 0.5.
        let members = vec![
            mlp("small1", vec![8]),
            mlp("small2", vec![10]),
            mlp("large1", vec![256]),
            mlp("large2", vec![300]),
        ];
        let clustering = cluster_architectures(&members, 0.5).unwrap();
        assert!(clustering.len() >= 2, "got {} clusters", clustering.len());
        // Every cluster satisfies the condition.
        for c in &clustering.clusters {
            for &i in &c.member_indices {
                assert!(satisfies_condition(&members[i], &c.mothernet, 0.5));
            }
        }
    }

    #[test]
    fn clusters_cover_all_members_once() {
        let members: Vec<Architecture> = (0..7)
            .map(|i| mlp(&format!("n{i}"), vec![8 + 12 * i]))
            .collect();
        let clustering = cluster_architectures(&members, 0.6).unwrap();
        let mut seen: Vec<usize> = clustering
            .clusters
            .iter()
            .flat_map(|c| c.member_indices.clone())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
        // cluster_of agrees.
        for i in 0..7 {
            let g = clustering.cluster_of(i);
            assert!(clustering.clusters[g].member_indices.contains(&i));
        }
    }

    #[test]
    fn greedy_is_minimal_vs_dp_oracle() {
        // A spread of sizes that produces multiple clusters.
        let widths = [8usize, 9, 14, 40, 44, 160, 170, 600];
        let members: Vec<Architecture> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| mlp(&format!("n{i}"), vec![w]))
            .collect();
        for tau in [0.3, 0.5, 0.7, 0.9] {
            let greedy = cluster_architectures(&members, tau).unwrap().len();
            let oracle = min_clusters_exhaustive(&members, tau).unwrap();
            assert_eq!(greedy, oracle, "greedy suboptimal at tau={tau}");
        }
    }

    #[test]
    fn rejects_bad_tau() {
        let members = vec![mlp("a", vec![8])];
        assert!(cluster_architectures(&members, 0.0).is_err());
        assert!(cluster_architectures(&members, 1.5).is_err());
        assert!(cluster_architectures(&members, -0.1).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            cluster_architectures(&[], 0.5),
            Err(MotherNetsError::EmptyEnsemble)
        ));
    }
}

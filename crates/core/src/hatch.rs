//! Hatching: expanding a trained MotherNet into an ensemble member
//! (paper §2.2).
//!
//! Hatching is a thin, instrumented wrapper over the morphism engine: it is
//! a single pass over the MotherNet's parameters (the paper calls it
//! "instantaneous" relative to training) and the hatched network inherits
//! the MotherNet's function exactly (eval mode) unless symmetry-breaking
//! noise is requested.

use std::time::Instant;

use mn_morph::{morph_to_with, MorphOptions, MorphPlan};
use mn_nn::arch::Architecture;
use mn_nn::Network;

use crate::error::MotherNetsError;

/// Diagnostics of one hatch.
#[derive(Clone, Debug)]
pub struct HatchReport {
    /// The structural diff that was applied.
    pub plan: MorphPlan,
    /// Wall-clock seconds spent hatching (weight transfer only).
    pub wall_secs: f64,
    /// Number of leading layer nodes of the hatched network that are
    /// bitwise identical (config and state) to the MotherNet's — the
    /// measured shared trunk the inference engine can evaluate once and
    /// reuse across members hatched from the same mother.
    pub shared_prefix_nodes: usize,
}

/// Hatches `target` from a trained `mothernet`, exactly.
///
/// # Errors
///
/// Returns [`MotherNetsError::Hatch`] if the target is not reachable by
/// function-preserving expansion.
pub fn hatch(mothernet: &Network, target: &Architecture) -> Result<Network, MotherNetsError> {
    Ok(morph_to_with(mothernet, target, &MorphOptions::exact())?)
}

/// Hatches with options (noise, seed) and returns diagnostics.
///
/// # Errors
///
/// As [`hatch`].
pub fn hatch_with_report(
    mothernet: &Network,
    target: &Architecture,
    opts: &MorphOptions,
) -> Result<(Network, HatchReport), MotherNetsError> {
    let plan = MorphPlan::between(mothernet.arch(), target)?;
    let start = Instant::now();
    let net = morph_to_with(mothernet, target, opts)?;
    let wall_secs = start.elapsed().as_secs_f64();
    let report = HatchReport {
        plan,
        wall_secs,
        shared_prefix_nodes: mothernet.shared_eval_prefix(&net),
    };
    Ok((net, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_nn::arch::{ConvBlockSpec, InputSpec};
    use mn_nn::Mode;
    use mn_tensor::{max_abs_diff, Tensor, PRESERVATION_TOLERANCE};

    #[test]
    fn hatch_preserves_function() {
        let mother_arch = Architecture::plain(
            "mother",
            InputSpec::new(3, 8, 8),
            10,
            vec![ConvBlockSpec::repeated(3, 4, 1)],
            vec![8],
        );
        let member_arch = Architecture::plain(
            "member",
            InputSpec::new(3, 8, 8),
            10,
            vec![ConvBlockSpec::repeated(3, 8, 2)],
            vec![16],
        );
        let mut mother = Network::seeded(&mother_arch, 1);
        let (mut hatched, report) =
            hatch_with_report(&mother, &member_arch, &MorphOptions::exact()).unwrap();
        let x = Tensor::randn([3, 3, 8, 8], 1.0, &mut rand::thread_rng());
        let a = mother.forward(&x, Mode::Eval);
        let b = hatched.forward(&x, Mode::Eval);
        assert!(max_abs_diff(a.data(), b.data()) <= PRESERVATION_TOLERANCE);
        assert!(report.plan.total_ops() > 0);
        assert!(report.wall_secs >= 0.0);
        assert!(report.plan.inherited_fraction > 0.0);
        // The very first conv widens, so no leading node survives bitwise.
        assert_eq!(report.shared_prefix_nodes, 0);
    }

    #[test]
    fn hatch_reports_shared_prefix_when_only_tail_changes() {
        let mother_arch = Architecture::plain(
            "mother",
            InputSpec::new(3, 8, 8),
            10,
            vec![ConvBlockSpec::repeated(3, 4, 1)],
            vec![8],
        );
        // Same conv trunk, wider dense tail: the exact hatch copies the
        // conv/BN weights bit-for-bit, so the whole conv prefix
        // (Conv, BatchNorm, Relu, MaxPool, Flatten) is shared.
        let member_arch = Architecture::plain(
            "member",
            InputSpec::new(3, 8, 8),
            10,
            vec![ConvBlockSpec::repeated(3, 4, 1)],
            vec![16],
        );
        let mother = Network::seeded(&mother_arch, 3);
        let (_, report) = hatch_with_report(&mother, &member_arch, &MorphOptions::exact()).unwrap();
        assert_eq!(report.shared_prefix_nodes, 5);
    }

    #[test]
    fn hatch_rejects_incompatible() {
        let mother_arch = Architecture::mlp("m", InputSpec::new(3, 8, 8), 10, vec![8]);
        let smaller = Architecture::mlp("s", InputSpec::new(3, 8, 8), 10, vec![4]);
        let mother = Network::seeded(&mother_arch, 2);
        assert!(matches!(
            hatch(&mother, &smaller),
            Err(MotherNetsError::Hatch(_))
        ));
    }
}

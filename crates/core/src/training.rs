//! End-to-end ensemble training: MotherNets and the paper's two baselines.
//!
//! The three strategies of the evaluation (§3):
//!
//! * [`Strategy::FullData`] — every member trained from scratch on the full
//!   training split;
//! * [`Strategy::Bagging`] — every member trained from scratch on a
//!   bootstrap resample;
//! * [`Strategy::MotherNets`] — cluster the ensemble (§2.3), train each
//!   cluster's MotherNet once on the full data (low bias), hatch every
//!   member by function-preserving transformations, then fine-tune each
//!   member on a bootstrap resample (diversity / low variance).
//!
//! All strategies use the **same convergence criterion** (validation-loss
//! patience), as the paper requires; the MotherNets speedup *is* the
//! reduction in epochs-to-convergence of hatched members.
//!
//! Timing: every record carries wall-clock seconds and a deterministic cost
//! counter. Total ensemble training time is reported **two ways**:
//! [`TrainedEnsemble::total_wall_secs`] is the *sum over networks*
//! (sequential-equivalent compute — what the paper's Figures 5b–9b plot),
//! while [`TrainedEnsemble::wall_clock_secs`] is the elapsed time of the
//! whole strategy run, which drops below the sequential-equivalent figure
//! when members train in parallel ([`EnsembleTrainConfig::parallel`]).
//!
//! Parallel member training composes with the parallel tensor kernels
//! without oversubscription: each member job owns a private [`Workspace`]
//! (no shared scratch, no locks), and the vendored rayon shim runs nested
//! pipelines inline on its workers, so a machine-wide member fan-out
//! never multiplies into a kernel-level spawn storm.

use std::time::Instant;

use mn_data::sampler::{bag_seeded, train_val_split};
use mn_data::Dataset;
use mn_ensemble::{ArtifactError, EngineError, EnginePlan, EnsembleManifest, EnsembleMember};
use mn_morph::MorphOptions;
use mn_nn::arch::Architecture;
use mn_nn::train::{train_with, TrainConfig, TrainReport};
use mn_nn::{LrSchedule, Network};
use mn_tensor::Workspace;
use rayon::prelude::*;

use crate::cluster::{cluster_architectures, Clustering};
use crate::error::MotherNetsError;
use crate::hatch::hatch_with_report;

/// How hatched members are trained after hatching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemberTraining {
    /// Fine-tune on a bootstrap resample — the paper's method.
    Bagging,
    /// Fine-tune on the full training split (ablation: no bagging
    /// diversity).
    FullData,
    /// No fine-tuning (ablation: pure inherited function).
    None,
}

/// Configuration of the MotherNets strategy.
#[derive(Clone, Copy, Debug)]
pub struct MotherNetsStrategy {
    /// Clustering parameter τ ∈ (0, 1]: minimum fraction of each member's
    /// parameters that must originate from its MotherNet (§2.3).
    pub tau: f64,
    /// Symmetry-breaking noise added while hatching (0 = exact transfer).
    pub hatch_noise: f32,
    /// How members are trained after hatching.
    pub member_training: MemberTraining,
    /// Learning-rate multiplier for hatched members relative to the shared
    /// base rate. Hatched networks start from a trained function, so they
    /// are *fine-tuned* rather than trained: a reduced rate keeps the
    /// inherited function intact and lets the shared convergence criterion
    /// fire after a handful of epochs. The paper folds such schedule
    /// choices under §2.2 ("existing approaches to accelerate the training
    /// of individual neural networks … can all be incorporated into our
    /// training phases").
    pub member_lr_scale: f32,
}

impl Default for MotherNetsStrategy {
    fn default() -> Self {
        MotherNetsStrategy {
            tau: 0.5,
            hatch_noise: 1e-2,
            member_training: MemberTraining::Bagging,
            member_lr_scale: 0.6,
        }
    }
}

/// Configuration of the snapshot-ensembles comparator (Huang et al.,
/// discussed in the paper's related work §4): train *one* network with
/// cyclic cosine annealing and snapshot it at every cycle minimum. The
/// resulting ensemble is monolithic — every member shares one architecture
/// — which is exactly the limitation MotherNets remove; the comparator
/// exists for the ablation harness.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotStrategy {
    /// Epochs per annealing cycle (= per snapshot).
    pub cycle_epochs: usize,
    /// Annealing floor as a fraction of the base learning rate.
    pub min_lr_factor: f32,
}

impl Default for SnapshotStrategy {
    fn default() -> Self {
        SnapshotStrategy {
            cycle_epochs: 4,
            min_lr_factor: 0.05,
        }
    }
}

/// An ensemble training strategy.
#[derive(Clone, Copy, Debug)]
pub enum Strategy {
    /// MotherNets (the paper's contribution).
    MotherNets(MotherNetsStrategy),
    /// Train every member from scratch on the full data.
    FullData,
    /// Train every member from scratch on a bootstrap resample.
    Bagging,
    /// Snapshot ensembles: one architecture, one training run, one member
    /// per learning-rate cycle (related-work comparator).
    Snapshot(SnapshotStrategy),
}

impl Strategy {
    /// The paper's default MotherNets configuration (τ = 0.5).
    pub fn mothernets() -> Strategy {
        Strategy::MotherNets(MotherNetsStrategy::default())
    }

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::MotherNets(_) => "MotherNets",
            Strategy::FullData => "full-data",
            Strategy::Bagging => "bagging",
            Strategy::Snapshot(_) => "snapshot",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Configuration shared by all strategies.
#[derive(Clone, Debug)]
pub struct EnsembleTrainConfig {
    /// Per-network training hyper-parameters (including the shared
    /// convergence criterion).
    pub train: TrainConfig,
    /// Fraction of the training set held out for validation/convergence.
    pub val_fraction: f64,
    /// Master seed; all member seeds derive from it.
    pub seed: u64,
    /// Train members of a strategy in parallel with rayon. Does not affect
    /// reported (sequential-equivalent) training time.
    pub parallel: bool,
}

impl Default for EnsembleTrainConfig {
    fn default() -> Self {
        EnsembleTrainConfig {
            train: TrainConfig::default(),
            val_fraction: 0.15,
            seed: 0,
            parallel: true,
        }
    }
}

/// Whether a record describes a MotherNet or an ensemble member.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// A cluster's MotherNet (trained once, full data).
    Mother,
    /// An ensemble member.
    Member,
}

/// Cost accounting for one trained network.
#[derive(Clone, Debug)]
pub struct MemberRecord {
    /// Network name (architecture name, or `mothernet-g`).
    pub name: String,
    /// MotherNet or member.
    pub phase: Phase,
    /// Cluster index (MotherNets strategy only).
    pub cluster: Option<usize>,
    /// Wall-clock training seconds (this network only).
    pub wall_secs: f64,
    /// Epochs run until convergence.
    pub epochs: usize,
    /// Gradient steps taken.
    pub gradient_steps: u64,
    /// Deterministic cost: gradient steps × parameter count.
    pub cost_units: f64,
    /// Validation error at the end of training.
    pub final_val_error: f32,
    /// Whether the patience criterion fired.
    pub converged: bool,
}

impl MemberRecord {
    fn from_report(name: &str, phase: Phase, cluster: Option<usize>, report: &TrainReport) -> Self {
        MemberRecord {
            name: name.to_string(),
            phase,
            cluster,
            wall_secs: report.wall_secs,
            epochs: report.epochs_run(),
            gradient_steps: report.gradient_steps,
            cost_units: report.cost_units,
            final_val_error: report.final_val.error,
            converged: report.converged,
        }
    }
}

/// A fully trained ensemble with its cost accounting.
#[derive(Clone, Debug)]
pub struct TrainedEnsemble {
    /// Trained members, in the order the architectures were supplied.
    pub members: Vec<EnsembleMember>,
    /// Records for the MotherNets (empty for baselines).
    pub mother_records: Vec<MemberRecord>,
    /// Records for the members, aligned with `members`.
    pub member_records: Vec<MemberRecord>,
    /// Trained MotherNets (kept for incremental ensemble growth).
    pub mothernets: Vec<(Architecture, Network)>,
    /// The clustering used (MotherNets strategy only).
    pub clustering: Option<Clustering>,
    /// Elapsed wall-clock seconds of the whole strategy run (vs. the
    /// sequential-equivalent [`TrainedEnsemble::total_wall_secs`]).
    /// Incremental growth via [`TrainedEnsemble::hatch_additional`] adds
    /// its own elapsed time.
    pub wall_clock_secs: f64,
    /// Label of the strategy that trained the ensemble (see
    /// [`Strategy::label`]); recorded in the serving artifact's manifest.
    pub strategy_label: String,
}

fn derive_seed(master: u64, salt: u64, index: usize) -> u64 {
    // SplitMix64-style mixing — cheap, deterministic, well spread.
    let mut z = master
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn check_data(archs: &[Architecture], data: &Dataset) -> Result<(), MotherNetsError> {
    let (c, h, w) = data.geometry();
    for a in archs {
        if (a.input.channels, a.input.height, a.input.width) != (c, h, w) {
            return Err(MotherNetsError::DataMismatch {
                reason: format!(
                    "{} expects {}x{}x{} input, data is {c}x{h}x{w}",
                    a.name, a.input.channels, a.input.height, a.input.width
                ),
            });
        }
        if a.num_classes != data.num_classes() {
            return Err(MotherNetsError::DataMismatch {
                reason: format!(
                    "{} has {} classes, data has {}",
                    a.name,
                    a.num_classes,
                    data.num_classes()
                ),
            });
        }
    }
    Ok(())
}

/// Trains an ensemble of architectures on `train_set` with the given
/// strategy.
///
/// # Errors
///
/// Returns [`MotherNetsError`] for empty/incompatible ensembles, bad
/// parameters, or data/architecture mismatches.
pub fn train_ensemble(
    archs: &[Architecture],
    train_set: &Dataset,
    strategy: &Strategy,
    cfg: &EnsembleTrainConfig,
) -> Result<TrainedEnsemble, MotherNetsError> {
    if archs.is_empty() {
        return Err(MotherNetsError::EmptyEnsemble);
    }
    for a in archs {
        a.validate()?;
    }
    check_data(archs, train_set)?;
    if !(cfg.val_fraction > 0.0 && cfg.val_fraction < 1.0) {
        return Err(MotherNetsError::InvalidParameter {
            what: "val_fraction".into(),
            value: cfg.val_fraction,
        });
    }

    let run_start = Instant::now();
    let (train_core, val) = train_val_split(train_set, cfg.val_fraction, cfg.seed);

    match strategy {
        Strategy::FullData => {
            let jobs: Vec<(usize, &Architecture)> = archs.iter().enumerate().collect();
            let results = run_members(&jobs, cfg, |i, arch, tcfg, ws| {
                let mut net = Network::seeded(arch, derive_seed(cfg.seed, 1, i));
                let report = train_with(
                    &mut net,
                    train_core.images(),
                    train_core.labels(),
                    val.images(),
                    val.labels(),
                    &tcfg,
                    ws,
                );
                (net, report)
            });
            Ok(assemble(
                archs,
                results,
                Vec::new(),
                Vec::new(),
                None,
                run_start,
                strategy.label(),
            ))
        }
        Strategy::Bagging => {
            let jobs: Vec<(usize, &Architecture)> = archs.iter().enumerate().collect();
            let results = run_members(&jobs, cfg, |i, arch, tcfg, ws| {
                let bagged = bag_seeded(&train_core, derive_seed(cfg.seed, 2, i));
                let mut net = Network::seeded(arch, derive_seed(cfg.seed, 3, i));
                let report = train_with(
                    &mut net,
                    bagged.images(),
                    bagged.labels(),
                    val.images(),
                    val.labels(),
                    &tcfg,
                    ws,
                );
                (net, report)
            });
            Ok(assemble(
                archs,
                results,
                Vec::new(),
                Vec::new(),
                None,
                run_start,
                strategy.label(),
            ))
        }
        Strategy::Snapshot(scfg) => {
            if scfg.cycle_epochs == 0 {
                return Err(MotherNetsError::InvalidParameter {
                    what: "cycle_epochs".into(),
                    value: 0.0,
                });
            }
            // One training run of the ensemble's largest architecture;
            // every cosine cycle contributes one snapshot member.
            let base = archs
                .iter()
                .max_by_key(|a| a.param_count())
                .expect("non-empty ensemble");
            let mut net = Network::seeded(base, derive_seed(cfg.seed, 20, 0));
            let mut members = Vec::with_capacity(archs.len());
            let mut member_records = Vec::with_capacity(archs.len());
            // One training run, one workspace: every cycle reuses the pool.
            let mut ws = Workspace::new();
            for c in 0..archs.len() {
                let cycle_cfg = TrainConfig {
                    max_epochs: scfg.cycle_epochs,
                    // Never stop inside a cycle: snapshots are taken at
                    // cycle minima, not at convergence.
                    patience: usize::MAX,
                    schedule: LrSchedule::Cosine {
                        period: scfg.cycle_epochs,
                        min_factor: scfg.min_lr_factor,
                    },
                    shuffle_seed: derive_seed(cfg.seed, 21, c),
                    ..cfg.train.clone()
                };
                let report = train_with(
                    &mut net,
                    train_core.images(),
                    train_core.labels(),
                    val.images(),
                    val.labels(),
                    &cycle_cfg,
                    &mut ws,
                );
                let name = format!("snapshot-{}-{}", c, base.name);
                member_records.push(MemberRecord::from_report(
                    &name,
                    Phase::Member,
                    None,
                    &report,
                ));
                let mut snapshot = net.clone();
                snapshot.clear_caches();
                members.push(EnsembleMember::new(name, snapshot));
            }
            Ok(TrainedEnsemble {
                members,
                mother_records: Vec::new(),
                member_records,
                mothernets: Vec::new(),
                clustering: None,
                wall_clock_secs: run_start.elapsed().as_secs_f64(),
                strategy_label: strategy.label().to_string(),
            })
        }
        Strategy::MotherNets(mcfg) => {
            let clustering = cluster_architectures(archs, mcfg.tau)?;
            let mut mothernets: Vec<(Architecture, Network)> = Vec::new();
            let mut mother_records: Vec<MemberRecord> = Vec::new();

            // Train each cluster's MotherNet on the full training split
            // (one retained workspace across the cluster loop).
            let mut mother_ws = Workspace::new();
            for (g, cluster) in clustering.clusters.iter().enumerate() {
                let mut net = Network::seeded(&cluster.mothernet, derive_seed(cfg.seed, 4, g));
                let tcfg = cfg.train.clone().with_seed(derive_seed(cfg.seed, 5, g));
                let report = train_with(
                    &mut net,
                    train_core.images(),
                    train_core.labels(),
                    val.images(),
                    val.labels(),
                    &tcfg,
                    &mut mother_ws,
                );
                mother_records.push(MemberRecord::from_report(
                    &cluster.mothernet.name,
                    Phase::Mother,
                    Some(g),
                    &report,
                ));
                mothernets.push((cluster.mothernet.clone(), net));
            }

            // Hatch and fine-tune every member.
            let jobs: Vec<(usize, &Architecture)> = archs.iter().enumerate().collect();
            let clustering_ref = &clustering;
            let mothernets_ref = &mothernets;
            let results: Vec<(Network, TrainReport, usize)> = {
                // Each member job owns a private workspace: parallel
                // hatched-member training composes with the parallel
                // kernels (which run inline on fan-out workers) without
                // shared scratch or oversubscription.
                let work = |&(i, arch): &(usize, &Architecture)| {
                    let mut ws = Workspace::new();
                    let g = clustering_ref.cluster_of(i);
                    let mother = &mothernets_ref[g].1;
                    let opts =
                        MorphOptions::with_noise(mcfg.hatch_noise, derive_seed(cfg.seed, 6, i));
                    let (mut net, _report) = hatch_with_report(mother, arch, &opts)
                        .expect("clustering guarantees hatchability");
                    let mut tcfg = cfg.train.clone().with_seed(derive_seed(cfg.seed, 7, i));
                    tcfg.lr *= mcfg.member_lr_scale;
                    let report = match mcfg.member_training {
                        MemberTraining::Bagging => {
                            let bagged = bag_seeded(&train_core, derive_seed(cfg.seed, 8, i));
                            train_with(
                                &mut net,
                                bagged.images(),
                                bagged.labels(),
                                val.images(),
                                val.labels(),
                                &tcfg,
                                &mut ws,
                            )
                        }
                        MemberTraining::FullData => train_with(
                            &mut net,
                            train_core.images(),
                            train_core.labels(),
                            val.images(),
                            val.labels(),
                            &tcfg,
                            &mut ws,
                        ),
                        MemberTraining::None => zero_report(&mut net, &val),
                    };
                    (net, report, g)
                };
                if cfg.parallel {
                    jobs.par_iter().map(work).collect()
                } else {
                    jobs.iter().map(work).collect()
                }
            };

            let mut members = Vec::with_capacity(archs.len());
            let mut member_records = Vec::with_capacity(archs.len());
            for ((arch, (net, report, g)), _i) in archs.iter().zip(results).zip(0..archs.len()) {
                member_records.push(MemberRecord::from_report(
                    &arch.name,
                    Phase::Member,
                    Some(g),
                    &report,
                ));
                members.push(EnsembleMember::new(arch.name.clone(), net));
            }
            Ok(TrainedEnsemble {
                members,
                mother_records,
                member_records,
                mothernets,
                clustering: Some(clustering),
                wall_clock_secs: run_start.elapsed().as_secs_f64(),
                strategy_label: strategy.label().to_string(),
            })
        }
    }
}

/// Runs the per-member closure, optionally in parallel, preserving order.
/// Every job receives its own private [`Workspace`] — per-worker scratch
/// that keeps parallel member training lock-free and lets each training
/// run reach its zero-allocation steady state independently.
fn run_members<F>(
    jobs: &[(usize, &Architecture)],
    cfg: &EnsembleTrainConfig,
    work: F,
) -> Vec<(Network, TrainReport)>
where
    F: Fn(usize, &Architecture, TrainConfig, &mut Workspace) -> (Network, TrainReport) + Sync,
{
    let run = |&(i, arch): &(usize, &Architecture)| {
        let tcfg = cfg.train.clone().with_seed(derive_seed(cfg.seed, 10, i));
        let mut ws = Workspace::new();
        work(i, arch, tcfg, &mut ws)
    };
    if cfg.parallel {
        jobs.par_iter().map(run).collect()
    } else {
        jobs.iter().map(run).collect()
    }
}

fn assemble(
    archs: &[Architecture],
    results: Vec<(Network, TrainReport)>,
    mother_records: Vec<MemberRecord>,
    mothernets: Vec<(Architecture, Network)>,
    clustering: Option<Clustering>,
    run_start: Instant,
    strategy_label: &str,
) -> TrainedEnsemble {
    let mut members = Vec::with_capacity(archs.len());
    let mut member_records = Vec::with_capacity(archs.len());
    for (arch, (net, report)) in archs.iter().zip(results) {
        member_records.push(MemberRecord::from_report(
            &arch.name,
            Phase::Member,
            None,
            &report,
        ));
        members.push(EnsembleMember::new(arch.name.clone(), net));
    }
    TrainedEnsemble {
        members,
        mother_records,
        member_records,
        mothernets,
        clustering,
        wall_clock_secs: run_start.elapsed().as_secs_f64(),
        strategy_label: strategy_label.to_string(),
    }
}

/// A report for the "no member training" ablation: zero cost, evaluated
/// validation error only.
fn zero_report(net: &mut Network, val: &Dataset) -> TrainReport {
    let eval = mn_nn::metrics::evaluate(net, val.images(), val.labels(), 64);
    TrainReport {
        epochs: Vec::new(),
        wall_secs: 0.0,
        gradient_steps: 0,
        cost_units: 0.0,
        converged: true,
        final_val: eval,
    }
}

impl TrainedEnsemble {
    /// The manifest recorded in this ensemble's serving artifact: the
    /// paper's default combination rule (ensemble averaging) plus the
    /// training strategy that produced the members.
    pub fn manifest(&self) -> EnsembleManifest {
        EnsembleManifest {
            combine: "average".to_string(),
            strategy: self.strategy_label.clone(),
        }
    }

    /// Serializes the trained members as `MNE1` ensemble-artifact bytes
    /// (see `mn_ensemble::artifact`). An `InferenceEngine` booted from
    /// these bytes produces predictions bitwise identical to one built
    /// from [`TrainedEnsemble::members`] directly.
    pub fn to_artifact_bytes(&self) -> Vec<u8> {
        mn_ensemble::artifact::save_ensemble(&self.members, &self.manifest())
    }

    /// Writes the `MNE1` serving artifact to `path` — the hand-off from
    /// training to serving: a server cold-starts from this file via
    /// `EnginePlan::load` without touching training code or data.
    ///
    /// # Errors
    ///
    /// [`mn_ensemble::ArtifactError::Io`] when the file cannot be
    /// written.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), ArtifactError> {
        mn_ensemble::artifact::write_ensemble_file(path, &self.members, &self.manifest())
    }

    /// [`TrainedEnsemble::to_artifact_bytes`] with member weights stored
    /// under `encoding` (`f16` ≈ 0.5x, `i8` ≈ 0.25x the full-precision
    /// artifact bytes). Loading dequantizes into `f32` members, so the
    /// engine and serving stack run unchanged; predictions drift by at
    /// most the encoding's quantization error (pinned by the
    /// `quantized_artifacts` integration suite).
    ///
    /// # Errors
    ///
    /// Any `save_ensemble_quantized` error (a member holding NaN/±Inf
    /// weights).
    pub fn to_artifact_bytes_quantized(
        &self,
        encoding: mn_ensemble::WeightEncoding,
    ) -> Result<Vec<u8>, ArtifactError> {
        mn_ensemble::artifact::save_ensemble_quantized(&self.members, &self.manifest(), encoding)
    }

    /// [`TrainedEnsemble::save`] with quantized member weights — the
    /// small-footprint deployment hand-off.
    ///
    /// # Errors
    ///
    /// [`mn_ensemble::ArtifactError::Io`] when the file cannot be
    /// written, else any `save_ensemble_quantized` error.
    pub fn save_quantized(
        &self,
        path: impl AsRef<std::path::Path>,
        encoding: mn_ensemble::WeightEncoding,
    ) -> Result<(), ArtifactError> {
        mn_ensemble::artifact::write_ensemble_file_quantized(
            path,
            &self.members,
            &self.manifest(),
            encoding,
        )
    }

    /// The in-process hand-off from training to serving: builds a shared
    /// [`EnginePlan`] over clones of the trained members. Wrap it
    /// (`.into_shared()`) and open one `EngineSession` per serving worker
    /// — or hand it straight to `mn_ensemble::ServerBuilder` — without a
    /// disk round trip. Predictions are bitwise identical to the artifact
    /// path.
    ///
    /// # Errors
    ///
    /// [`EngineError::MemberMismatch`] when the trained members disagree
    /// on geometry (distinct tasks trained into one ensemble);
    /// [`EngineError::EmptyEnsemble`] is unreachable for a successfully
    /// trained ensemble.
    pub fn to_engine_plan(&self, batch_size: usize) -> Result<EnginePlan, EngineError> {
        EnginePlan::new(self.members.clone(), batch_size)
    }

    /// Sum of wall-clock seconds over MotherNets and members —
    /// sequential-equivalent total training time (what Figures 5b–9b plot).
    /// Compare against [`TrainedEnsemble::wall_clock_secs`] (elapsed time
    /// of the run) to see the member-parallel speedup.
    pub fn total_wall_secs(&self) -> f64 {
        self.mother_records
            .iter()
            .chain(&self.member_records)
            .map(|r| r.wall_secs)
            .sum()
    }

    /// Sequential-equivalent time divided by elapsed time — > 1 when
    /// parallel member training actually bought wall-clock time.
    pub fn parallel_speedup(&self) -> f64 {
        self.total_wall_secs() / self.wall_clock_secs.max(1e-12)
    }

    /// Sum of deterministic cost units over MotherNets and members.
    pub fn total_cost_units(&self) -> f64 {
        self.mother_records
            .iter()
            .chain(&self.member_records)
            .map(|r| r.cost_units)
            .sum()
    }

    /// Training time if the ensemble had been stopped after its first `k`
    /// members: all MotherNet time plus the first `k` member times. This is
    /// the "training time vs ensemble size" curve of Figures 6b–9b.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the member count.
    pub fn cumulative_wall_secs(&self, k: usize) -> f64 {
        assert!(k <= self.member_records.len(), "k out of range");
        let mothers: f64 = self.mother_records.iter().map(|r| r.wall_secs).sum();
        mothers
            + self.member_records[..k]
                .iter()
                .map(|r| r.wall_secs)
                .sum::<f64>()
    }

    /// Deterministic-cost analogue of [`Self::cumulative_wall_secs`].
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the member count.
    pub fn cumulative_cost_units(&self, k: usize) -> f64 {
        assert!(k <= self.member_records.len(), "k out of range");
        let mothers: f64 = self.mother_records.iter().map(|r| r.cost_units).sum();
        mothers
            + self.member_records[..k]
                .iter()
                .map(|r| r.cost_units)
                .sum::<f64>()
    }

    /// Mean epochs to convergence across members (the per-network speedup
    /// the paper reports comes from this dropping after hatching).
    pub fn mean_member_epochs(&self) -> f64 {
        self.member_records
            .iter()
            .map(|r| r.epochs as f64)
            .sum::<f64>()
            / self.member_records.len().max(1) as f64
    }

    /// Hatches one more member from an existing MotherNet and fine-tunes it
    /// — incremental ensemble growth without retraining anything else
    /// (paper §1: "every additional network can be hatched from the trained
    /// MotherNet").
    ///
    /// The member is appended to `members`/`member_records`.
    ///
    /// # Errors
    ///
    /// Returns [`MotherNetsError::IncompatibleMembers`] if no stored
    /// MotherNet can hatch `arch` under the strategy's τ.
    pub fn hatch_additional(
        &mut self,
        arch: &Architecture,
        train_set: &Dataset,
        strategy: &MotherNetsStrategy,
        cfg: &EnsembleTrainConfig,
    ) -> Result<(), MotherNetsError> {
        arch.validate()?;
        check_data(std::slice::from_ref(arch), train_set)?;
        let index = self.members.len();
        let (g, mother) = self
            .mothernets
            .iter()
            .enumerate()
            .find(|(_, (m_arch, _))| {
                mn_morph::check_compatible(m_arch, arch).is_ok()
                    && crate::cluster::satisfies_condition(arch, m_arch, strategy.tau)
            })
            .map(|(g, (_, net))| (g, net))
            .ok_or_else(|| MotherNetsError::IncompatibleMembers {
                reason: format!("no stored MotherNet can hatch {}", arch.name),
            })?;

        let hatch_start = Instant::now();
        let opts = MorphOptions::with_noise(strategy.hatch_noise, derive_seed(cfg.seed, 6, index));
        let (mut net, _) = hatch_with_report(mother, arch, &opts)?;
        let (train_core, val) = train_val_split(train_set, cfg.val_fraction, cfg.seed);
        let mut tcfg = cfg.train.clone().with_seed(derive_seed(cfg.seed, 7, index));
        tcfg.lr *= strategy.member_lr_scale;
        let mut ws = Workspace::new();
        let report = match strategy.member_training {
            MemberTraining::Bagging => {
                let bagged = bag_seeded(&train_core, derive_seed(cfg.seed, 8, index));
                train_with(
                    &mut net,
                    bagged.images(),
                    bagged.labels(),
                    val.images(),
                    val.labels(),
                    &tcfg,
                    &mut ws,
                )
            }
            MemberTraining::FullData => train_with(
                &mut net,
                train_core.images(),
                train_core.labels(),
                val.images(),
                val.labels(),
                &tcfg,
                &mut ws,
            ),
            MemberTraining::None => zero_report(&mut net, &val),
        };
        self.member_records.push(MemberRecord::from_report(
            &arch.name,
            Phase::Member,
            Some(g),
            &report,
        ));
        self.members
            .push(EnsembleMember::new(arch.name.clone(), net));
        self.wall_clock_secs += hatch_start.elapsed().as_secs_f64();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_data::presets::{cifar10_sim, Scale};
    use mn_nn::arch::InputSpec;

    fn archs() -> Vec<Architecture> {
        let input = InputSpec::new(3, 8, 8);
        vec![
            Architecture::mlp("small", input, 10, vec![12]),
            Architecture::mlp("medium", input, 10, vec![16]),
            Architecture::mlp("large", input, 10, vec![20]),
        ]
    }

    fn fast_cfg() -> EnsembleTrainConfig {
        EnsembleTrainConfig {
            train: TrainConfig {
                max_epochs: 2,
                batch_size: 32,
                ..TrainConfig::default()
            },
            val_fraction: 0.2,
            seed: 42,
            parallel: false,
        }
    }

    #[test]
    fn full_data_strategy_trains_all_members_in_order() {
        let task = cifar10_sim(Scale::Tiny, 1);
        let trained =
            train_ensemble(&archs(), &task.train, &Strategy::FullData, &fast_cfg()).unwrap();
        assert_eq!(trained.members.len(), 3);
        assert_eq!(trained.member_records.len(), 3);
        assert_eq!(trained.members[0].name, "small");
        assert_eq!(trained.members[2].name, "large");
        assert!(trained.mother_records.is_empty());
        assert!(trained.clustering.is_none());
        assert!(trained.total_wall_secs() > 0.0);
        assert!(trained.total_cost_units() > 0.0);
    }

    #[test]
    fn bagging_strategy_differs_from_full_data() {
        let task = cifar10_sim(Scale::Tiny, 2);
        let fd = train_ensemble(&archs(), &task.train, &Strategy::FullData, &fast_cfg()).unwrap();
        let bag = train_ensemble(&archs(), &task.train, &Strategy::Bagging, &fast_cfg()).unwrap();
        // Different training data must produce different validation errors
        // for at least one member (same seeds otherwise).
        let fd_errs: Vec<f32> = fd
            .member_records
            .iter()
            .map(|r| r.final_val_error)
            .collect();
        let bag_errs: Vec<f32> = bag
            .member_records
            .iter()
            .map(|r| r.final_val_error)
            .collect();
        assert_ne!(fd_errs, bag_errs);
    }

    #[test]
    fn mothernets_strategy_produces_mothers_and_records() {
        let task = cifar10_sim(Scale::Tiny, 3);
        let trained =
            train_ensemble(&archs(), &task.train, &Strategy::mothernets(), &fast_cfg()).unwrap();
        assert_eq!(trained.members.len(), 3);
        let clustering = trained.clustering.as_ref().expect("clustering present");
        assert_eq!(trained.mothernets.len(), clustering.len());
        assert_eq!(trained.mother_records.len(), clustering.len());
        for r in &trained.mother_records {
            assert_eq!(r.phase, Phase::Mother);
            assert!(r.cluster.is_some());
        }
        for r in &trained.member_records {
            assert_eq!(r.phase, Phase::Member);
        }
        // Cumulative time is monotone and includes the mother cost at k=0.
        let t0 = trained.cumulative_wall_secs(0);
        let t3 = trained.cumulative_wall_secs(3);
        assert!(t0 > 0.0, "mother time must be included");
        assert!(t3 >= t0);
        assert!((trained.total_wall_secs() - t3).abs() < 1e-9);
    }

    #[test]
    fn member_training_none_skips_fine_tuning() {
        let task = cifar10_sim(Scale::Tiny, 4);
        let strategy = Strategy::MotherNets(MotherNetsStrategy {
            member_training: MemberTraining::None,
            ..MotherNetsStrategy::default()
        });
        let trained = train_ensemble(&archs(), &task.train, &strategy, &fast_cfg()).unwrap();
        for r in &trained.member_records {
            assert_eq!(r.gradient_steps, 0);
            assert_eq!(r.cost_units, 0.0);
        }
    }

    #[test]
    fn hatch_additional_grows_the_ensemble() {
        let task = cifar10_sim(Scale::Tiny, 5);
        let strategy = MotherNetsStrategy::default();
        let mut trained = train_ensemble(
            &archs(),
            &task.train,
            &Strategy::MotherNets(strategy),
            &fast_cfg(),
        )
        .unwrap();
        let extra = Architecture::mlp("extra", InputSpec::new(3, 8, 8), 10, vec![18]);
        trained
            .hatch_additional(&extra, &task.train, &strategy, &fast_cfg())
            .unwrap();
        assert_eq!(trained.members.len(), 4);
        assert_eq!(trained.members[3].name, "extra");
        assert_eq!(trained.member_records[3].name, "extra");
    }

    #[test]
    fn data_mismatch_is_rejected() {
        let task = cifar10_sim(Scale::Tiny, 6);
        let wrong = vec![Architecture::mlp(
            "wrong",
            InputSpec::new(1, 8, 8),
            10,
            vec![8],
        )];
        assert!(matches!(
            train_ensemble(&wrong, &task.train, &Strategy::FullData, &fast_cfg()),
            Err(MotherNetsError::DataMismatch { .. })
        ));
        let wrong_classes = vec![Architecture::mlp(
            "wrong",
            InputSpec::new(3, 8, 8),
            7,
            vec![8],
        )];
        assert!(matches!(
            train_ensemble(
                &wrong_classes,
                &task.train,
                &Strategy::FullData,
                &fast_cfg()
            ),
            Err(MotherNetsError::DataMismatch { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let task = cifar10_sim(Scale::Tiny, 7);
        let a =
            train_ensemble(&archs(), &task.train, &Strategy::mothernets(), &fast_cfg()).unwrap();
        let b =
            train_ensemble(&archs(), &task.train, &Strategy::mothernets(), &fast_cfg()).unwrap();
        for (ra, rb) in a.member_records.iter().zip(&b.member_records) {
            assert_eq!(ra.final_val_error, rb.final_val_error);
            assert_eq!(ra.gradient_steps, rb.gradient_steps);
        }
    }

    #[test]
    fn snapshot_strategy_yields_one_member_per_cycle() {
        let task = cifar10_sim(Scale::Tiny, 9);
        let strategy = Strategy::Snapshot(SnapshotStrategy {
            cycle_epochs: 2,
            ..SnapshotStrategy::default()
        });
        let trained = train_ensemble(&archs(), &task.train, &strategy, &fast_cfg()).unwrap();
        assert_eq!(trained.members.len(), 3);
        assert!(trained.mother_records.is_empty());
        assert!(trained.clustering.is_none());
        // All snapshots share the largest architecture.
        for m in &trained.members {
            assert!(m.name.contains("large"));
        }
        // Each cycle ran exactly cycle_epochs epochs (no early stop).
        for r in &trained.member_records {
            assert_eq!(r.epochs, 2);
        }
        // Snapshots from different cycles are different functions.
        let mut members = trained.members;
        let probe = task.test.images();
        let a = members[0].predict_proba(probe, 64);
        let b = members[2].predict_proba(probe, 64);
        assert_ne!(a.data(), b.data(), "snapshots should differ across cycles");
    }

    #[test]
    fn snapshot_rejects_zero_cycle() {
        let task = cifar10_sim(Scale::Tiny, 10);
        let strategy = Strategy::Snapshot(SnapshotStrategy {
            cycle_epochs: 0,
            ..SnapshotStrategy::default()
        });
        assert!(matches!(
            train_ensemble(&archs(), &task.train, &strategy, &fast_cfg()),
            Err(MotherNetsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn wall_clock_is_reported_alongside_sequential_equivalent() {
        let task = cifar10_sim(Scale::Tiny, 11);
        let mut trained =
            train_ensemble(&archs(), &task.train, &Strategy::mothernets(), &fast_cfg()).unwrap();
        // Sequential run: elapsed time covers every member's training (plus
        // clustering and hatching), so it is at least the per-network sum.
        assert!(trained.wall_clock_secs > 0.0);
        assert!(
            trained.wall_clock_secs >= trained.total_wall_secs() * 0.99,
            "sequential elapsed {} < sum over networks {}",
            trained.wall_clock_secs,
            trained.total_wall_secs()
        );
        assert!(trained.parallel_speedup().is_finite());
        // Incremental growth accumulates its own elapsed time.
        let before = trained.wall_clock_secs;
        let extra = Architecture::mlp("extra", InputSpec::new(3, 8, 8), 10, vec![14]);
        trained
            .hatch_additional(
                &extra,
                &task.train,
                &MotherNetsStrategy::default(),
                &fast_cfg(),
            )
            .unwrap();
        assert!(trained.wall_clock_secs > before);
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let task = cifar10_sim(Scale::Tiny, 8);
        let seq_cfg = fast_cfg();
        let par_cfg = EnsembleTrainConfig {
            parallel: true,
            ..fast_cfg()
        };
        let seq = train_ensemble(&archs(), &task.train, &Strategy::FullData, &seq_cfg).unwrap();
        let par = train_ensemble(&archs(), &task.train, &Strategy::FullData, &par_cfg).unwrap();
        for (ra, rb) in seq.member_records.iter().zip(&par.member_records) {
            assert_eq!(ra.final_val_error, rb.final_val_error);
        }
    }
}

//! Substrate throughput: the tensor kernels that dominate training cost.
//! These give context for every wall-clock number in the figure harness.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mn_tensor::{conv, ops, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::randn([64, 64], 1.0, &mut rng);
    let b = Tensor::randn([64, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x64", |bench| {
        bench.iter(|| black_box(ops::matmul(black_box(&a), black_box(&b))))
    });
    let at = Tensor::randn([64, 32], 1.0, &mut rng);
    c.bench_function("matmul_tn_64x32", |bench| {
        bench.iter(|| black_box(ops::matmul_tn(black_box(&at), black_box(&a))))
    });
}

fn bench_matmul_blocked_vs_reference(c: &mut Criterion) {
    // The headline blocked-GEMM comparison (the `kernels` bin reports the
    // same pair as JSON): register-tiled + parallel bands vs the naive
    // triple loop at 256^3.
    let mut rng = StdRng::seed_from_u64(5);
    let a = Tensor::randn([256, 256], 1.0, &mut rng);
    let b = Tensor::randn([256, 256], 1.0, &mut rng);
    let mut group = c.benchmark_group("matmul_256");
    group.bench_function("blocked", |bench| {
        bench.iter(|| black_box(ops::matmul(black_box(&a), black_box(&b))))
    });
    group.bench_function("reference", |bench| {
        bench.iter(|| black_box(ops::reference::matmul(black_box(&a), black_box(&b))))
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let input = Tensor::randn([32, 16, 8, 8], 1.0, &mut rng);
    let weight = Tensor::randn([16, 16, 3, 3], 1.0, &mut rng);
    let bias = Tensor::zeros([16]);
    c.bench_function("conv2d_fwd_32x16x8x8_k3", |bench| {
        bench.iter(|| black_box(conv::conv2d_forward(&input, &weight, &bias, 1)))
    });
    let gout = conv::conv2d_forward(&input, &weight, &bias, 1);
    c.bench_function("conv2d_bwd_input", |bench| {
        bench.iter(|| black_box(conv::conv2d_backward_input(&gout, &weight, 8, 8, 1)))
    });
    c.bench_function("conv2d_bwd_params", |bench| {
        bench.iter(|| black_box(conv::conv2d_backward_params(&gout, &input, 3, 1)))
    });
}

fn bench_conv_formulations(c: &mut Criterion) {
    // Direct loops vs im2col+GEMM: the ablation behind choosing the direct
    // kernel as the default at this workspace's spatial extents.
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("conv_formulation");
    for (cin, hw) in [(8usize, 8usize), (32, 8), (16, 16)] {
        let input = Tensor::randn([8, cin, hw, hw], 1.0, &mut rng);
        let weight = Tensor::randn([16, cin, 3, 3], 1.0, &mut rng);
        let bias = Tensor::zeros([16]);
        group.bench_function(format!("direct_c{cin}_s{hw}"), |b| {
            b.iter(|| black_box(conv::conv2d_forward(&input, &weight, &bias, 1)))
        });
        group.bench_function(format!("im2col_c{cin}_s{hw}"), |b| {
            b.iter(|| {
                black_box(mn_tensor::im2col::conv2d_forward_im2col(
                    &input, &weight, &bias, 1,
                ))
            })
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let logits = Tensor::randn([256, 100], 1.0, &mut rng);
    c.bench_function("softmax_rows_256x100", |bench| {
        bench.iter_batched(
            || logits.clone(),
            |mut x| {
                ops::softmax_rows(&mut x);
                black_box(x)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_blocked_vs_reference,
    bench_conv,
    bench_conv_formulations,
    bench_softmax
);
criterion_main!(benches);

//! MotherNet construction and clustering cost. The paper's Algorithm 1
//! reduces clustering from exponential to linearithmic by sorting on
//! parameter count (§2.3); this bench shows the cheap scaling in practice
//! and compares the greedy sweep against the exhaustive DP oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use mn_bench::zoo::{resnet_ensemble, vgg_large_ensemble};
use mothernets::cluster::{cluster_architectures, min_clusters_exhaustive};
use mothernets::construct::mothernet_of;
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("mothernet_of");
    for n in [5usize, 25, 100] {
        let ens = vgg_large_ensemble(n, 10);
        group.bench_function(format!("vgg_{n}"), |b| {
            b.iter(|| black_box(mothernet_of(&ens, "mother").unwrap()))
        });
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    // The ResNet ladder actually splits into multiple clusters.
    let resnets = resnet_ensemble(5, 10);
    group.bench_function("greedy_resnet_25", |b| {
        b.iter(|| black_box(cluster_architectures(&resnets, 0.5).unwrap()))
    });
    group.bench_function("dp_oracle_resnet_25", |b| {
        b.iter(|| black_box(min_clusters_exhaustive(&resnets, 0.5).unwrap()))
    });
    for n in [25usize, 100] {
        let ens = vgg_large_ensemble(n, 10);
        group.bench_function(format!("greedy_vgg_{n}"), |b| {
            b.iter(|| black_box(cluster_architectures(&ens, 0.5).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction, bench_clustering);
criterion_main!(benches);

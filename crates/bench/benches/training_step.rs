//! Per-gradient-step training cost: the MotherNet (smallest common
//! structure) versus the largest ensemble member. The MotherNets speedup
//! model is "cheap network trained long once + expensive networks trained
//! briefly"; this bench quantifies the per-step sides of that trade.

use criterion::{criterion_group, criterion_main, Criterion};
use mn_bench::zoo::{v13, v19};
use mn_nn::loss::softmax_cross_entropy;
use mn_nn::optim::Sgd;
use mn_nn::{Mode, Network};
use mn_tensor::Tensor;
use mothernets::construct::mothernet_of;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn step(net: &mut Network, opt: &mut Sgd, x: &Tensor, y: &[usize]) -> f32 {
    let logits = net.forward(x, Mode::Train);
    let (loss, grad) = softmax_cross_entropy(&logits, y);
    net.backward(&grad);
    let mut params = net.params_mut();
    opt.step(&mut params);
    loss
}

fn bench_training_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn([32, 3, 8, 8], 1.0, &mut rng);
    let y: Vec<usize> = (0..32).map(|i| i % 10).collect();

    let mother_arch = mothernet_of(&[v13(10), v19(10)], "mother").unwrap();
    let mut group = c.benchmark_group("sgd_step_batch32");
    for arch in [mother_arch, v13(10), v19(10)] {
        let label = format!("{}_{}params", arch.name, arch.param_count());
        let mut net = Network::seeded(&arch, 2);
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        group.bench_function(label, |b| {
            b.iter(|| black_box(step(&mut net, &mut opt, &x, &y)))
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = Tensor::randn([64, 3, 8, 8], 1.0, &mut rng);
    let mut net = Network::seeded(&v19(10), 4);
    c.bench_function("inference_v19_batch64", |b| {
        b.iter(|| black_box(net.predict_proba(&x)))
    });
}

criterion_group!(benches, bench_training_step, bench_inference);
criterion_main!(benches);

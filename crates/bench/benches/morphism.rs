//! Hatching latency: the paper claims hatching is "instantaneous" relative
//! to training — "generating every ensemble network requires a single pass
//! on the MotherNet" (§2.2). This bench measures that single pass, plus the
//! noise-vs-exact ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use mn_bench::zoo::{v13, v16, v19, vgg_large_ensemble};
use mn_morph::{morph_to_with, MorphOptions};
use mn_nn::Network;
use mothernets::construct::mothernet_of;
use std::hint::black_box;

fn bench_hatch_by_target_size(c: &mut Criterion) {
    let ens = vec![v13(10), v16(10), v19(10)];
    let mother_arch = mothernet_of(&ens, "mother").expect("zoo is compatible");
    let mother = Network::seeded(&mother_arch, 1);
    let mut group = c.benchmark_group("hatch");
    for target in [v13(10), v16(10), v19(10)] {
        group.bench_function(
            format!("to_{}_{}params", target.name, target.param_count()),
            |b| {
                b.iter(|| {
                    black_box(
                        morph_to_with(&mother, &target, &MorphOptions::exact())
                            .expect("compatible"),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_hatch_noise_ablation(c: &mut Criterion) {
    let ens = vgg_large_ensemble(8, 10);
    let mother_arch = mothernet_of(&ens, "mother").expect("zoo is compatible");
    let mother = Network::seeded(&mother_arch, 2);
    let target = &ens[7];
    let mut group = c.benchmark_group("hatch_noise_ablation");
    group.bench_function("exact", |b| {
        b.iter(|| black_box(morph_to_with(&mother, target, &MorphOptions::exact()).unwrap()))
    });
    group.bench_function("with_noise", |b| {
        b.iter(|| {
            black_box(morph_to_with(&mother, target, &MorphOptions::with_noise(5e-3, 3)).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hatch_by_target_size,
    bench_hatch_noise_ablation
);
criterion_main!(benches);

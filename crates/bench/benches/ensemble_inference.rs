//! Serving throughput: the batched parallel inference engine against the
//! naive one-by-one member loop, on the same 8-member convolutional
//! ensemble the `kernels` JSON harness measures.

use criterion::{criterion_group, criterion_main, Criterion};
use mn_bench::kernels::{bench_ensemble_members, force_conv_formulation};
use mn_ensemble::{InferenceEngine, MemberPredictions};
use mn_nn::layers::ConvFormulation;
use mn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_engine_vs_naive(c: &mut Criterion) {
    let x = Tensor::randn([64, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(2));
    let mut group = c.benchmark_group("ensemble_infer_8x64");

    let mut engine =
        InferenceEngine::new(bench_ensemble_members(), 32).expect("bench ensemble builds");
    group.bench_function("engine", |b| b.iter(|| black_box(engine.predict(&x))));

    let mut naive = bench_ensemble_members();
    for m in naive.iter_mut() {
        force_conv_formulation(&mut m.network, ConvFormulation::Direct);
    }
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool builds");
    group.bench_function("naive_one_by_one", |b| {
        b.iter(|| single.install(|| black_box(MemberPredictions::collect(&mut naive, &x, 32))))
    });
    group.finish();
}

fn bench_engine_batch_sizes(c: &mut Criterion) {
    let x = Tensor::randn([256, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(3));
    let mut group = c.benchmark_group("engine_batch_size");
    for bs in [16usize, 64, 256] {
        let mut engine =
            InferenceEngine::new(bench_ensemble_members(), bs).expect("bench ensemble builds");
        group.bench_function(format!("bs{bs}_n256"), |b| {
            b.iter(|| black_box(engine.predict(&x)))
        });
    }
    group.finish();
}

fn bench_engine_policies(c: &mut Criterion) {
    use mn_ensemble::ExecPolicy;
    let x = Tensor::randn([256, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(4));
    let mut group = c.benchmark_group("engine_policy_n256");
    let threads = rayon::current_num_threads();
    for (label, policy) in [
        ("member_parallel", ExecPolicy::MemberParallel),
        (
            "data_parallel",
            ExecPolicy::DataParallel { shards: threads },
        ),
        ("auto", ExecPolicy::Auto),
    ] {
        let mut engine =
            InferenceEngine::new(bench_ensemble_members(), 32).expect("bench ensemble builds");
        engine.set_policy(policy);
        group.bench_function(label, |b| b.iter(|| black_box(engine.predict(&x))));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_vs_naive,
    bench_engine_batch_sizes,
    bench_engine_policies
);
criterion_main!(benches);

//! Serving-stack harness:
//!
//! ```text
//! cargo run --release -p mn-bench --bin serving \
//!     [-- --requests N] [--clients C] [--reps R] [--out DIR]
//! ```
//!
//! Runs the save → load → serve smoke (bitwise cold-start check), times
//! the zero-init vs seeded construction paths (asserting zero-init
//! wins), drives the sharded dynamic-batching server with closed-loop
//! single-example clients at 1, 2, and 4 worker shards over one shared
//! plan, sweeps the engine's parallelism policies on a large batch,
//! measures the uncertainty-gated cascade against the flat ensemble on
//! skewed traffic, kills a worker mid-traffic to measure supervised
//! recovery, prints the tables, and saves `<out>/serving.json`
//! (default `results/`).

use std::path::PathBuf;

use mn_bench::report::save_json;
use mn_bench::serving;

fn main() {
    let mut requests = 2000usize;
    let mut clients = 4usize;
    let mut reps = 15usize;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--requests needs a positive integer"));
            }
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--clients needs a positive integer"));
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--reps needs a positive integer"));
            }
            "--out" => {
                out_dir = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| panic!("--out needs a directory"));
            }
            other => panic!(
                "unknown argument {other:?} (expected --requests N / --clients C / --reps R / --out DIR)"
            ),
        }
    }

    println!(
        "serving bench: {requests} requests from {clients} client(s), {} worker thread(s)\n",
        rayon::current_num_threads()
    );
    let result = serving::run(requests, clients, reps);
    print!("{}", result.table());
    save_json(&out_dir, "serving", &result);
    for e in &result.shard_sweep {
        println!(
            "\nserver x{} shard(s): {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms, mean micro-batch {:.1}",
            e.shards, e.throughput_rps, e.p50_ms, e.p99_ms, e.mean_batch
        );
    }
    println!(
        "cold start: artifact boot {:.2} ms; net construction zero-init {:.2} ms vs seeded {:.2} ms ({:.1}x)",
        result.cold_start.artifact_boot_ms,
        result.cold_start.zero_init_ms,
        result.cold_start.seeded_init_ms,
        result.cold_start.init_speedup()
    );
    for p in &result.policies {
        println!(
            "engine {:>15}: {:>8.0} examples/s",
            p.policy, p.examples_per_sec
        );
    }
    let t = &result.trunk_sharing;
    println!(
        "trunk sharing ({} members, trunk {}/{} nodes, {:.1}% of params shared): \
         flat {:.0} -> trunk {:.0} examples/s ({:.2}x)",
        t.members,
        t.trunk_len,
        t.member_nodes,
        t.shared_params_fraction * 100.0,
        t.flat_examples_per_sec,
        t.trunk_examples_per_sec,
        t.speedup
    );
    let c = &result.cascade;
    println!(
        "cascade ({} members, {} gate @ {:.3}, {:.0}% easy traffic): \
         {:.0}% early exits, {:.2}% label mismatch, \
         flat {:.0} -> cascade {:.0} examples/s ({:.2}x, 1 thread)",
        c.members,
        c.metric,
        c.threshold,
        c.easy_fraction * 100.0,
        c.early_exit_rate * 100.0,
        c.label_mismatch_rate * 100.0,
        c.flat_examples_per_sec,
        c.cascade_examples_per_sec,
        c.speedup
    );
    let w = &result.worker_kill;
    println!(
        "worker kill ({} shards): {:.0} -> {:.0} req/s goodput ({:.2}x recovery), \
         first answer {:.2} ms after the kill, {} request(s) lost, {} panic(s)/{} restart(s)",
        w.shards,
        w.pre_kill_rps,
        w.post_kill_rps,
        w.recovery_ratio,
        w.recovery_ms,
        w.killed_requests,
        w.worker_panics,
        w.restarts
    );
}

//! Kernel/engine/training speedup harness:
//!
//! ```text
//! cargo run --release -p mn-bench --bin kernels [-- --reps N] [--out DIR]
//! ```
//!
//! Measures the blocked matmul, the batched ensemble inference engine,
//! and the GEMM-backed training step against their naive baselines,
//! prints both tables, and saves `<out>/kernels.json` plus
//! `<out>/training.json` (default `results/`).

use std::path::PathBuf;

use mn_bench::report::save_json;
use mn_bench::{kernels, training};

fn main() {
    let mut reps = 15usize;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--reps needs a positive integer"));
            }
            "--out" => {
                out_dir = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| panic!("--out needs a directory"));
            }
            other => panic!("unknown argument {other:?} (expected --reps N / --out DIR)"),
        }
    }

    println!(
        "kernel bench: {reps} reps, {} worker thread(s)\n",
        rayon::current_num_threads()
    );
    let result = kernels::run(reps);
    print!("{}", result.table());
    save_json(&out_dir, "kernels", &result);

    println!("\ntraining bench: {reps} reps\n");
    let train_result = training::run(reps);
    print!("{}", train_result.table());
    save_json(&out_dir, "training", &train_result);

    let matmul = result.get("matmul_256").expect("matmul comparison present");
    let infer = result
        .get("ensemble_infer_8x64")
        .expect("ensemble comparison present");
    let step1 = train_result
        .get("train_step_1thread")
        .expect("single-thread training comparison present");
    let step = train_result
        .get("train_step")
        .expect("training comparison present");
    println!(
        "\nmatmul 256^3: {:.2}x over naive; 8-member inference: {:.2}x over one-by-one",
        matmul.speedup, infer.speedup
    );
    println!(
        "training step: {:.2}x over naive backward (1 core), {:.2}x ({} cores); {:.0} steps/sec",
        step1.speedup, step.speedup, train_result.threads, train_result.steps_per_sec
    );
}

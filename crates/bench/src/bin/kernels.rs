//! Kernel/engine speedup harness:
//!
//! ```text
//! cargo run --release -p mn-bench --bin kernels [-- --reps N] [--out DIR]
//! ```
//!
//! Measures the blocked matmul and the batched ensemble inference engine
//! against their naive baselines, prints a table, and saves
//! `<out>/kernels.json` (default `results/`).

use std::path::PathBuf;

use mn_bench::kernels;
use mn_bench::report::save_json;

fn main() {
    let mut reps = 15usize;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--reps needs a positive integer"));
            }
            "--out" => {
                out_dir = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| panic!("--out needs a directory"));
            }
            other => panic!("unknown argument {other:?} (expected --reps N / --out DIR)"),
        }
    }

    println!(
        "kernel bench: {reps} reps, {} worker thread(s)\n",
        rayon::current_num_threads()
    );
    let result = kernels::run(reps);
    print!("{}", result.table());
    save_json(&out_dir, "kernels", &result);

    let matmul = result.get("matmul_256").expect("matmul comparison present");
    let infer = result
        .get("ensemble_infer_8x64")
        .expect("ensemble comparison present");
    println!(
        "\nmatmul 256^3: {:.2}x over naive; 8-member inference: {:.2}x over one-by-one",
        matmul.speedup, infer.speedup
    );
}

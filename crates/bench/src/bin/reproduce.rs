//! `reproduce`: regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce <experiment> [--scale tiny|small|full] [--seed N] [--n K] [--out DIR]
//!
//! experiments:
//!   table1   VGGNet variants of the small ensemble
//!   fig5     small ensemble: error by inference method + time breakdown
//!   fig6     large VGG ensemble on CIFAR-10 (sim)
//!   fig7     large VGG ensemble on CIFAR-100 (sim)
//!   fig8     large VGG ensemble on SVHN (sim)
//!   fig9     clustered ResNet ensemble on CIFAR-10 (sim)
//!   fig10    oracle error of all large ensembles (needs fig6..fig9)
//!   ablation MotherNets design-choice ablation grid (DESIGN.md)
//!   all      everything above, in order (ablation excluded)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use mn_bench::experiments::{ablation, large, oracle, small_ensemble, ExpConfig};
use mn_data::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: reproduce <table1|fig5|fig6|fig7|fig8|fig9|fig10|ablation|all> \
         [--scale tiny|small|full] [--seed N] [--n K] [--out DIR]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let experiment = args[0].clone();
    let mut cfg = ExpConfig::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage());
                cfg.scale = Scale::parse(v).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage());
                cfg.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--n" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage());
                cfg.n_override = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--out" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage());
                cfg.out_dir = PathBuf::from(v);
            }
            _ => usage(),
        }
        i += 1;
    }

    let run_fig10 = |cfg: &ExpConfig| -> ExitCode {
        match oracle::run_fig10(cfg) {
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("fig10 failed: {e}");
                ExitCode::FAILURE
            }
        }
    };

    match experiment.as_str() {
        "table1" => small_ensemble::run_table1(),
        "fig5" => {
            small_ensemble::run_fig5(&cfg);
        }
        "fig6" => {
            large::run_fig6(&cfg);
        }
        "fig7" => {
            large::run_fig7(&cfg);
        }
        "fig8" => {
            large::run_fig8(&cfg);
        }
        "fig9" => {
            large::run_fig9(&cfg);
        }
        "fig10" => return run_fig10(&cfg),
        "ablation" => {
            ablation::run_ablation(&cfg);
        }
        "all" => {
            small_ensemble::run_table1();
            small_ensemble::run_fig5(&cfg);
            large::run_fig6(&cfg);
            large::run_fig7(&cfg);
            large::run_fig8(&cfg);
            large::run_fig9(&cfg);
            return run_fig10(&cfg);
        }
        _ => usage(),
    }
    ExitCode::SUCCESS
}

//! Training-throughput measurements (the "BENCH json" numbers backing the
//! fast-training-path claims).
//!
//! The headline comparisons, on a small representative CNN (two VGG-style
//! conv blocks + dense head, batch 32):
//!
//! * **train_step_1thread** — one full SGD step (forward, loss, backward,
//!   fused update) on a **single core**: the naive path (direct-loop
//!   convolution forward *and backward*, fresh allocations every step)
//!   vs the fast path (GEMM-backed kernels both ways, retained
//!   [`Workspace`], fused optimizer). This isolates the kernel win from
//!   parallel speedup — the paper's time-to-accuracy comparisons assume
//!   per-step cost drops on equal hardware.
//! * **train_step** — the same comparison at the machine's full thread
//!   count (adds the chunk-parallel batch loops).
//!
//! The report also carries absolute throughput of the fast path:
//! steps/sec on the step benchmark and the wall time of one full epoch
//! (including shuffling, batch gathering and validation) through the real
//! [`mn_nn::train::train`] loop.
//!
//! Run via `cargo run --release -p mn-bench --bin kernels` — prints a
//! table and saves `results/training.json` next to `results/kernels.json`.

use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec};
use mn_nn::layer::Mode;
use mn_nn::layers::ConvFormulation;
use mn_nn::loss::softmax_cross_entropy_ws;
use mn_nn::optim::Sgd;
use mn_nn::train::{train, TrainConfig};
use mn_nn::Network;
use mn_tensor::{Tensor, Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::kernels::{force_conv_formulation, KernelComparison};
use crate::report::{median_ms, render_table};

/// The training-throughput report saved as `results/training.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingBenchResult {
    /// Worker threads available to the parallel paths.
    pub threads: usize,
    /// Naive-vs-fast step comparisons, in measurement order.
    pub comparisons: Vec<KernelComparison>,
    /// Fast-path gradient steps per second (full thread count, batch 32).
    pub steps_per_sec: f64,
    /// Wall milliseconds of one full training epoch (512 examples,
    /// batch 32, including validation) through the real train loop.
    pub epoch_wall_ms: f64,
}

impl TrainingBenchResult {
    /// Looks up a comparison by name.
    pub fn get(&self, name: &str) -> Option<&KernelComparison> {
        self.comparisons.iter().find(|c| c.name == name)
    }

    /// Renders the report as a fixed-width table.
    pub fn table(&self) -> String {
        let mut rows: Vec<Vec<String>> = self
            .comparisons
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    format!("{:.3}", c.baseline_ms),
                    format!("{:.3}", c.optimized_ms),
                    format!("{:.2}x", c.speedup),
                ]
            })
            .collect();
        rows.push(vec![
            "steps_per_sec".into(),
            String::new(),
            format!("{:.1}", self.steps_per_sec),
            String::new(),
        ]);
        rows.push(vec![
            "epoch_wall_ms".into(),
            String::new(),
            format!("{:.1}", self.epoch_wall_ms),
            String::new(),
        ]);
        render_table(
            &["training bench", "baseline ms", "optimized ms", "speedup"],
            &rows,
        )
    }
}

/// The small CNN the training benches exercise: two conv blocks
/// (3→16→16 channels, 3×3 kernels — deep enough reductions that Auto
/// lowers onto the GEMM core) and a 32-unit dense head on 8×8 inputs.
fn bench_arch() -> Architecture {
    Architecture::plain(
        "train-bench-cnn",
        InputSpec::new(3, 8, 8),
        10,
        vec![
            ConvBlockSpec::repeated(3, 16, 1),
            ConvBlockSpec::repeated(3, 16, 1),
        ],
        vec![32],
    )
}

/// One full SGD training step through the workspace-threaded fast path.
fn fast_step(net: &mut Network, opt: &mut Sgd, x: &Tensor, y: &[usize], ws: &mut Workspace) -> f32 {
    let logits = net.forward_with(x, Mode::Train, ws);
    let (loss, grad) = softmax_cross_entropy_ws(&logits, y, ws);
    ws.release(logits);
    net.backward_with(&grad, ws);
    ws.release(grad);
    opt.step_network(net);
    loss
}

/// One full SGD training step the pre-optimization way: direct-formulation
/// kernels (the caller pins the formulation), a fresh workspace every call
/// (i.e. fresh allocations for every activation, gradient and cache), and
/// the materialized-parameter-list optimizer entry point.
fn naive_step(net: &mut Network, opt: &mut Sgd, x: &Tensor, y: &[usize]) -> f32 {
    let logits = net.forward(x, Mode::Train);
    let (loss, grad) = softmax_cross_entropy_ws(&logits, y, &mut Workspace::new());
    net.backward(&grad);
    let mut params = net.params_mut();
    opt.step(&mut params);
    loss
}

/// Measures the naive-vs-fast step pair inside a pool of `threads`
/// workers (0 = the ambient pool).
fn step_comparison(name: &str, reps: usize, threads: usize) -> KernelComparison {
    let mut rng = StdRng::seed_from_u64(5);
    let x = Tensor::randn([32, 3, 8, 8], 1.0, &mut rng);
    let y: Vec<usize> = (0..32).map(|i| i % 10).collect();
    let arch = bench_arch();

    let mut naive_net = Network::seeded(&arch, 1);
    force_conv_formulation(&mut naive_net, ConvFormulation::Direct);
    let mut naive_opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut fast_net = Network::seeded(&arch, 1);
    let mut fast_opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut ws = Workspace::new();

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds");
    let baseline_ms = pool.install(|| {
        median_ms(reps, || {
            std::hint::black_box(naive_step(&mut naive_net, &mut naive_opt, &x, &y));
        })
    });
    let optimized_ms = pool.install(|| {
        median_ms(reps, || {
            std::hint::black_box(fast_step(&mut fast_net, &mut fast_opt, &x, &y, &mut ws));
        })
    });
    KernelComparison {
        name: name.to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms.max(1e-9),
    }
}

/// Runs every training measurement and returns the report.
pub fn run(reps: usize) -> TrainingBenchResult {
    let comparisons = vec![
        step_comparison("train_step_1thread", reps, 1),
        step_comparison("train_step", reps, 0),
    ];

    // Absolute fast-path throughput: steps/sec on the step benchmark.
    let mut rng = StdRng::seed_from_u64(6);
    let x = Tensor::randn([32, 3, 8, 8], 1.0, &mut rng);
    let y: Vec<usize> = (0..32).map(|i| i % 10).collect();
    let mut net = Network::seeded(&bench_arch(), 2);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut ws = Workspace::new();
    let step_ms = median_ms(reps.max(5), || {
        std::hint::black_box(fast_step(&mut net, &mut opt, &x, &y, &mut ws));
    });
    let steps_per_sec = 1000.0 / step_ms.max(1e-9);

    // One full epoch (512 examples, batch 32, plus validation) through
    // the real training loop.
    let n = 512usize;
    let x_train = Tensor::randn([n, 3, 8, 8], 1.0, &mut rng);
    let y_train: Vec<usize> = (0..n).map(|i| i % 10).collect();
    let x_val = Tensor::randn([64, 3, 8, 8], 1.0, &mut rng);
    let y_val: Vec<usize> = (0..64).map(|i| i % 10).collect();
    let cfg = TrainConfig {
        max_epochs: 1,
        batch_size: 32,
        ..TrainConfig::default()
    };
    let mut epoch_net = Network::seeded(&bench_arch(), 3);
    let report = train(&mut epoch_net, &x_train, &y_train, &x_val, &y_val, &cfg);
    let epoch_wall_ms = report.epochs[0].wall_secs * 1000.0;

    TrainingBenchResult {
        threads: rayon::current_num_threads(),
        comparisons,
        steps_per_sec,
        epoch_wall_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_and_renders() {
        let result = TrainingBenchResult {
            threads: 2,
            comparisons: vec![KernelComparison {
                name: "train_step_1thread".into(),
                baseline_ms: 4.0,
                optimized_ms: 1.0,
                speedup: 4.0,
            }],
            steps_per_sec: 500.0,
            epoch_wall_ms: 123.0,
        };
        let json = serde_json::to_string(&result).unwrap();
        let back: TrainingBenchResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("train_step_1thread").unwrap().speedup, 4.0);
        assert!(back.get("absent").is_none());
        let table = result.table();
        assert!(table.contains("4.00x"));
        assert!(table.contains("steps_per_sec"));
    }

    #[test]
    fn smoke_run_produces_positive_timings() {
        // One rep keeps this cheap; the real numbers come from the bin.
        let result = run(1);
        assert_eq!(result.comparisons.len(), 2);
        for c in &result.comparisons {
            assert!(c.baseline_ms > 0.0 && c.optimized_ms > 0.0, "{c:?}");
            assert!(c.speedup.is_finite());
        }
        assert!(result.steps_per_sec > 0.0);
        assert!(result.epoch_wall_ms > 0.0);
    }
}

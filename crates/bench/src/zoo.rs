//! The architecture zoo: scaled-down analogues of every ensemble in the
//! paper's evaluation (§3).
//!
//! The paper's networks target 32×32 CIFAR/SVHN images on a Tesla P40; this
//! reproduction runs on CPU, so each architecture is scaled down (3 conv
//! blocks on 8×8 inputs, 8–64 channels) while keeping the *pattern of
//! structural variation* identical — which is what MotherNet construction,
//! clustering, and hatching actually exercise (see DESIGN.md §4).
//!
//! * [`vgg_small_ensemble`] — the five VGG variants of **Table 1**
//!   (V13, V16, V16A, V16B, V19);
//! * [`vgg_large_ensemble`] — up to ~100 distinct single-layer variations
//!   of V16, built exactly as §3 describes: more filters, larger filter
//!   size, or both;
//! * [`resnet_ensemble`] — 25 ResNets: five depths × (base + four width
//!   variants: doubled/`+2` filters on even/odd stages).
//!
//! Note: like the paper's VGGs — whose three shared fully-connected layers
//! hold ~120M of ~134M parameters — the mini-VGGs carry a shared dense
//! head (`[192, 192]`) that dominates their parameter count. This matters
//! for faithfulness: it is what makes the Table 1 ensemble form a
//! *single* MotherNet cluster at the paper's τ = 0.5.

use mn_nn::arch::{Architecture, ConvBlockSpec, ConvLayerSpec, InputSpec, ResBlockSpec};

/// The input geometry shared by every zoo architecture (8×8 RGB — the
/// scaled-down stand-in for 32×32).
pub fn zoo_input() -> InputSpec {
    InputSpec::new(3, 8, 8)
}

fn conv(k: usize, f: usize) -> ConvLayerSpec {
    ConvLayerSpec::new(k, f)
}

/// V13-mini: the plain 2-layers-per-block VGG baseline of Table 1.
pub fn v13(num_classes: usize) -> Architecture {
    Architecture::plain(
        "V13",
        zoo_input(),
        num_classes,
        vec![
            ConvBlockSpec::repeated(3, 8, 2),
            ConvBlockSpec::repeated(3, 16, 2),
            ConvBlockSpec::repeated(3, 32, 2),
        ],
        vec![192, 192],
    )
}

/// V16-mini: V13 plus a 1×1 third layer in the deeper blocks (Table 1).
pub fn v16(num_classes: usize) -> Architecture {
    Architecture::plain(
        "V16",
        zoo_input(),
        num_classes,
        vec![
            ConvBlockSpec::repeated(3, 8, 2),
            ConvBlockSpec::new(vec![conv(3, 16), conv(3, 16), conv(1, 16)]),
            ConvBlockSpec::new(vec![conv(3, 32), conv(3, 32), conv(1, 32)]),
        ],
        vec![192, 192],
    )
}

/// V16A-mini: the wider-front variant of Table 1.
pub fn v16a(num_classes: usize) -> Architecture {
    Architecture::plain(
        "V16A",
        zoo_input(),
        num_classes,
        vec![
            ConvBlockSpec::repeated(3, 16, 2),
            ConvBlockSpec::new(vec![conv(3, 16), conv(3, 16), conv(1, 16)]),
            ConvBlockSpec::new(vec![conv(3, 16), conv(3, 16), conv(1, 32)]),
        ],
        vec![192, 192],
    )
}

/// V16B-mini: V16 with full 3×3 kernels in the added layers (Table 1).
pub fn v16b(num_classes: usize) -> Architecture {
    Architecture::plain(
        "V16B",
        zoo_input(),
        num_classes,
        vec![
            ConvBlockSpec::repeated(3, 8, 2),
            ConvBlockSpec::new(vec![conv(3, 16), conv(3, 16), conv(3, 16)]),
            ConvBlockSpec::new(vec![conv(3, 32), conv(3, 32), conv(3, 32)]),
        ],
        vec![192, 192],
    )
}

/// V19-mini: four layers in the deeper blocks (Table 1).
pub fn v19(num_classes: usize) -> Architecture {
    Architecture::plain(
        "V19",
        zoo_input(),
        num_classes,
        vec![
            ConvBlockSpec::repeated(3, 8, 2),
            ConvBlockSpec::repeated(3, 16, 4),
            ConvBlockSpec::repeated(3, 32, 4),
        ],
        vec![192, 192],
    )
}

/// The small ensemble of Table 1 / Figure 5: five VGG variants with
/// varying depth, filter counts, and filter sizes.
pub fn vgg_small_ensemble(num_classes: usize) -> Vec<Architecture> {
    vec![
        v13(num_classes),
        v16(num_classes),
        v16a(num_classes),
        v16b(num_classes),
        v19(num_classes),
    ]
}

/// Up to `n` distinct variants of V16, each differing from the base in
/// exactly one layer, created the way §3 describes: "(i) increasing the
/// number of filters, (ii) increasing the filter size, or (iii) applying
/// both (i) and (ii)".
///
/// Variants are generated in escalating "levels" (larger filter increments)
/// so that arbitrarily many distinct architectures exist; duplicates are
/// skipped.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn vgg_large_ensemble(n: usize, num_classes: usize) -> Vec<Architecture> {
    assert!(n > 0, "ensemble size must be positive");
    let base = v16(num_classes);
    let positions: Vec<(usize, usize)> = match &base.body {
        mn_nn::arch::Body::Plain { blocks, .. } => blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| (0..b.layers.len()).map(move |li| (bi, li)))
            .collect(),
        _ => unreachable!("V16 is plain"),
    };

    let mut out: Vec<Architecture> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    'outer: for level in 1usize..=32 {
        for kind in 0..3usize {
            for &(bi, li) in &positions {
                let mut arch = base.clone();
                if let mn_nn::arch::Body::Plain { blocks, .. } = &mut arch.body {
                    let layer = &mut blocks[bi].layers[li];
                    match kind {
                        0 => layer.filters += 4 * level,
                        1 => layer.filter_size = 5, // one odd step up from 3/1
                        2 => {
                            layer.filters += 4 * level;
                            layer.filter_size = 5;
                        }
                        _ => unreachable!(),
                    }
                }
                if seen.insert(arch.body.clone()) {
                    arch.name = format!("V16-var{}", out.len() + 1);
                    out.push(arch);
                    if out.len() == n {
                        break 'outer;
                    }
                }
            }
        }
    }
    assert_eq!(out.len(), n, "could not generate {n} distinct variants");
    out
}

/// One mini-ResNet: three stages with the given units per stage and widths.
fn resnet(name: &str, num_classes: usize, units: [usize; 3], filters: [usize; 3]) -> Architecture {
    Architecture::residual(
        name,
        zoo_input(),
        num_classes,
        vec![
            ResBlockSpec::new(units[0], filters[0], 3),
            ResBlockSpec::new(units[1], filters[1], 3),
            ResBlockSpec::new(units[2], filters[2], 3),
        ],
    )
}

/// The ResNet ensemble of Figure 9: `depths` base networks (analogues of
/// ResNet-18/34/50/101/152) each with four width variants — filters
/// doubled on even stages, doubled on odd stages, +2 on even stages, +2 on
/// odd stages — 5 networks per depth.
///
/// `depths` ≤ 5 selects a prefix of the depth ladder (useful for smaller
/// scales); the full paper configuration is `depths = 5` → 25 networks.
///
/// # Panics
///
/// Panics unless `1 <= depths <= 5`.
pub fn resnet_ensemble(depths: usize, num_classes: usize) -> Vec<Architecture> {
    assert!((1..=5).contains(&depths), "depths must be in 1..=5");
    let ladder: [(&str, [usize; 3]); 5] = [
        ("R18", [2, 2, 2]),
        ("R34", [3, 4, 3]),
        ("R50", [4, 6, 4]),
        ("R101", [6, 10, 6]),
        ("R152", [8, 12, 8]),
    ];
    let base_filters = [8usize, 16, 32];
    let mut out = Vec::with_capacity(depths * 5);
    for (name, units) in ladder.iter().take(depths) {
        let f = base_filters;
        // Base network.
        out.push(resnet(name, num_classes, *units, f));
        // Variant 1/2: doubled filters on even/odd stages.
        out.push(resnet(
            &format!("{name}-2xE"),
            num_classes,
            *units,
            [f[0] * 2, f[1], f[2] * 2],
        ));
        out.push(resnet(
            &format!("{name}-2xO"),
            num_classes,
            *units,
            [f[0], f[1] * 2, f[2]],
        ));
        // Variant 3/4: +2 filters on even/odd stages.
        out.push(resnet(
            &format!("{name}+2E"),
            num_classes,
            *units,
            [f[0] + 2, f[1], f[2] + 2],
        ));
        out.push(resnet(
            &format!("{name}+2O"),
            num_classes,
            *units,
            [f[0], f[1] + 2, f[2]],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mothernets::cluster::cluster_architectures;
    use mothernets::construct::mothernet_of;

    #[test]
    fn table1_ensemble_is_valid_and_diverse() {
        let ens = vgg_small_ensemble(10);
        assert_eq!(ens.len(), 5);
        for a in &ens {
            a.validate().unwrap();
        }
        // All architectures distinct.
        let names: std::collections::HashSet<_> = ens.iter().map(|a| &a.name).collect();
        assert_eq!(names.len(), 5);
        let bodies: std::collections::HashSet<_> = ens.iter().map(|a| &a.body).collect();
        assert_eq!(bodies.len(), 5);
        // V19 is the deepest, V13 the shallowest.
        assert!(v19(10).param_count() > v13(10).param_count());
    }

    #[test]
    fn table1_ensemble_forms_a_single_cluster_at_paper_tau() {
        // The paper trains a single MotherNet for the small ensemble at
        // tau = 0.5 (Figure 5b shows one "MN" segment); the shared dense
        // head makes the same true at mini scale.
        let ens = vgg_small_ensemble(10);
        let clustering = cluster_architectures(&ens, 0.5).unwrap();
        assert_eq!(clustering.len(), 1, "expected one cluster");
    }

    #[test]
    fn table1_ensemble_shares_a_mothernet() {
        let ens = vgg_small_ensemble(10);
        let mother = mothernet_of(&ens, "mother").unwrap();
        let min = ens.iter().map(|a| a.param_count()).min().unwrap();
        assert!(mother.param_count() <= min);
        // Mothernet block depths are per-block minima: [2, 2, 2].
        match &mother.body {
            mn_nn::arch::Body::Plain { blocks, .. } => {
                assert_eq!(
                    blocks.iter().map(|b| b.layers.len()).collect::<Vec<_>>(),
                    vec![2, 2, 2]
                );
            }
            _ => panic!("wrong family"),
        }
    }

    #[test]
    fn large_ensemble_variants_are_distinct_and_hatchable() {
        let ens = vgg_large_ensemble(60, 10);
        assert_eq!(ens.len(), 60);
        let bodies: std::collections::HashSet<_> = ens.iter().map(|a| &a.body).collect();
        assert_eq!(bodies.len(), 60, "variants must be structurally distinct");
        for a in &ens {
            a.validate().unwrap();
        }
        // All must share one MotherNet (they differ from V16 in one layer).
        let mother = mothernet_of(&ens, "mother").unwrap();
        assert!(mother.param_count() <= ens.iter().map(|a| a.param_count()).min().unwrap());
    }

    #[test]
    fn large_ensemble_can_reach_one_hundred() {
        let ens = vgg_large_ensemble(100, 10);
        assert_eq!(ens.len(), 100);
        let bodies: std::collections::HashSet<_> = ens.iter().map(|a| &a.body).collect();
        assert_eq!(bodies.len(), 100);
    }

    #[test]
    fn resnet_ensemble_structure() {
        let ens = resnet_ensemble(5, 10);
        assert_eq!(ens.len(), 25);
        for a in &ens {
            a.validate().unwrap();
        }
        // Size spread is large (R152 variants much bigger than R18).
        let sizes: Vec<u64> = ens.iter().map(|a| a.param_count()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max > 3 * min, "size spread too small: {min}..{max}");
    }

    #[test]
    fn resnet_ensemble_clusters_into_multiple_groups_at_half_tau() {
        // The paper's tau = 0.5 produces 3 clusters for the 25-net ResNet
        // ensemble; the scaled-down ladder must also split (>= 2).
        let ens = resnet_ensemble(5, 10);
        let clustering = cluster_architectures(&ens, 0.5).unwrap();
        assert!(
            clustering.len() >= 2,
            "expected multiple clusters, got {}",
            clustering.len()
        );
        // Every member is hatchable from its cluster MotherNet.
        for c in &clustering.clusters {
            for &i in &c.member_indices {
                mn_morph::check_compatible(&c.mothernet, &ens[i]).unwrap();
            }
        }
    }
}

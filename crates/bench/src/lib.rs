//! # mn-bench
//!
//! The benchmark harness of the MotherNets reproduction: regenerates every
//! table and figure of the paper's evaluation (§3) on the synthetic
//! stand-ins for CIFAR-10 / CIFAR-100 / SVHN.
//!
//! * [`zoo`] — scaled-down analogues of the paper's architectures
//!   (Table 1 VGG variants, 100-variant V16 family, the 25-net ResNet
//!   ladder);
//! * [`experiments`] — one runner per table/figure;
//! * [`kernels`] — kernel/engine speedup measurements vs their naive
//!   baselines (`cargo run -p mn-bench --release --bin kernels`);
//! * [`training`] — training-throughput measurements (SGD step and epoch
//!   wall time vs the naive backward path), emitted by the same binary;
//! * [`report`] — JSON persistence and text tables.
//!
//! Run experiments with the `reproduce` binary:
//!
//! ```text
//! cargo run -p mn-bench --release --bin reproduce -- fig5 --scale small
//! cargo run -p mn-bench --release --bin reproduce -- all --scale tiny
//! ```
//!
//! Component-level Criterion benches (`cargo bench -p mn-bench`) exercise
//! the paper's non-figure claims: hatching latency ("a single pass"),
//! construction/clustering cost, and per-epoch training cost.

pub mod experiments;
pub mod kernels;
pub mod report;
pub mod serving;
pub mod training;
pub mod zoo;

//! Result types (JSON-serializable), plain-text table rendering, and the
//! shared timing helper for the figure harness.

use std::fs;
use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Median wall-clock milliseconds of `reps` calls to `f`, after one
/// warm-up call (pages in buffers, fills workspaces, builds lanes). The
/// one timing helper every bench module shares, so the sampling rule
/// cannot drift between reports.
pub fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1000.0
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Test error under the four inference methods, in percent.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MethodErrors {
    /// Ensemble-averaging error (%).
    pub ea: f32,
    /// Voting error (%).
    pub vote: f32,
    /// Super-learner error (%).
    pub sl: f32,
    /// Oracle error (%).
    pub oracle: f32,
}

/// Training cost of one network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NamedTime {
    /// Network name.
    pub name: String,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Epochs to convergence.
    pub epochs: usize,
    /// Deterministic cost units (gradient steps × parameters).
    pub cost_units: f64,
}

/// One strategy's outcome on a fixed ensemble (Figure 5).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StrategyOutcome {
    /// Strategy label (`MotherNets` / `full-data` / `bagging`).
    pub strategy: String,
    /// Test errors under all four inference methods.
    pub errors: MethodErrors,
    /// Per-member training cost (ensemble members, in order).
    pub member_times: Vec<NamedTime>,
    /// MotherNet training cost(s) (empty for baselines).
    pub mother_times: Vec<NamedTime>,
    /// Total sequential-equivalent wall seconds.
    pub total_wall_secs: f64,
    /// Total deterministic cost units.
    pub total_cost_units: f64,
    /// Mean member epochs to convergence.
    pub mean_member_epochs: f64,
}

/// Figure 5 (small ensemble): all strategies on the Table 1 ensemble.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SmallEnsembleResult {
    /// Experiment scale label.
    pub scale: String,
    /// Master seed.
    pub seed: u64,
    /// Outcome per strategy.
    pub outcomes: Vec<StrategyOutcome>,
}

/// One point of a "versus ensemble size" curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Ensemble size (first `k` members).
    pub k: usize,
    /// MotherNets-trained ensemble errors at size `k`.
    pub errors: MethodErrors,
    /// Cumulative MotherNets training seconds through member `k`.
    pub mn_secs: f64,
    /// Cumulative full-data training seconds through member `k`.
    pub fd_secs: f64,
    /// Cumulative bagging training seconds through member `k`.
    pub bag_secs: f64,
    /// Deterministic-cost analogues of the three time columns.
    pub mn_cost: f64,
    /// Cumulative full-data cost units.
    pub fd_cost: f64,
    /// Cumulative bagging cost units.
    pub bag_cost: f64,
}

/// Figures 6–9: a large-ensemble sweep on one data set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LargeEnsembleResult {
    /// Which figure this reproduces (e.g. `"fig6"`).
    pub figure: String,
    /// Data-set label (e.g. `"CIFAR-10 (sim)"`).
    pub dataset: String,
    /// Network family label (`"VGGNet"` / `"ResNet"`).
    pub family: String,
    /// Experiment scale label.
    pub scale: String,
    /// Master seed.
    pub seed: u64,
    /// Total ensemble size trained.
    pub n: usize,
    /// Number of MotherNet clusters used by the MotherNets strategy.
    pub clusters: usize,
    /// The sampled curve.
    pub points: Vec<CurvePoint>,
    /// Full-ensemble test errors of the two baselines (accuracy context).
    pub fd_errors: MethodErrors,
    /// Bagging full-ensemble test errors.
    pub bag_errors: MethodErrors,
    /// Mean epochs to convergence: MotherNet-hatched members vs from
    /// scratch (the per-network speedup mechanism).
    pub mn_member_epochs: f64,
    /// Mean epochs of full-data members.
    pub fd_member_epochs: f64,
}

impl LargeEnsembleResult {
    /// Speedup of MotherNets over full-data at the largest k (wall clock).
    pub fn final_speedup_vs_fd(&self) -> f64 {
        let last = self.points.last().expect("non-empty curve");
        last.fd_secs / last.mn_secs.max(1e-12)
    }

    /// Speedup of MotherNets over bagging at the largest k (wall clock).
    pub fn final_speedup_vs_bag(&self) -> f64 {
        let last = self.points.last().expect("non-empty curve");
        last.bag_secs / last.mn_secs.max(1e-12)
    }
}

/// Writes any serializable result as pretty JSON under `out_dir`.
///
/// # Panics
///
/// Panics if the directory cannot be created or the file cannot be
/// written — the harness treats an unwritable results directory as fatal.
pub fn save_json<T: Serialize>(out_dir: &Path, name: &str, value: &T) {
    fs::create_dir_all(out_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out_dir.display()));
    let path = out_dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable result");
    fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("  [saved {}]", path.display());
}

/// Loads a previously saved result.
///
/// # Errors
///
/// Returns a message naming the missing/invalid file.
pub fn load_json<T: for<'de> Deserialize<'de>>(out_dir: &Path, name: &str) -> Result<T, String> {
    let path = out_dir.join(format!("{name}.json"));
    let data = fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {} ({e}); run the prerequisite experiment first",
            path.display()
        )
    })?;
    serde_json::from_str(&data).map_err(|e| format!("invalid JSON in {}: {e}", path.display()))
}

/// Renders a fixed-width text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!("{cell:<w$} | "));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&format!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f32) -> String {
    format!("{:.2}", x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        assert!(t.contains("| name   | value |"));
        assert!(t.contains("| longer | 2.5   |"));
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("mn-bench-test");
        let value = MethodErrors {
            ea: 1.0,
            vote: 2.0,
            sl: 3.0,
            oracle: 4.0,
        };
        save_json(&dir, "probe", &value);
        let back: MethodErrors = load_json(&dir, "probe").unwrap();
        assert_eq!(back.ea, 1.0);
        assert_eq!(back.oracle, 4.0);
        let missing: Result<MethodErrors, _> = load_json(&dir, "absent");
        assert!(missing.is_err());
    }

    #[test]
    fn speedup_computation() {
        let result = LargeEnsembleResult {
            figure: "f".into(),
            dataset: "d".into(),
            family: "v".into(),
            scale: "tiny".into(),
            seed: 0,
            n: 2,
            clusters: 1,
            points: vec![CurvePoint {
                k: 2,
                errors: MethodErrors::default(),
                mn_secs: 10.0,
                fd_secs: 60.0,
                bag_secs: 40.0,
                mn_cost: 1.0,
                fd_cost: 6.0,
                bag_cost: 4.0,
            }],
            fd_errors: MethodErrors::default(),
            bag_errors: MethodErrors::default(),
            mn_member_epochs: 2.0,
            fd_member_epochs: 10.0,
        };
        assert!((result.final_speedup_vs_fd() - 6.0).abs() < 1e-9);
        assert!((result.final_speedup_vs_bag() - 4.0).abs() < 1e-9);
    }
}

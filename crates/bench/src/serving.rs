//! Serving-stack measurements: cold start, dynamic batching, and the
//! engine's parallelism axes.
//!
//! The harness exercises the full production path once per run:
//!
//! 1. **save → load** — the 8-member bench ensemble is written as an
//!    `MNE1` artifact and booted back through
//!    [`InferenceEngine::from_artifact_bytes`]; the run *asserts* the
//!    round trip is bitwise exact before measuring anything (a serving
//!    smoke check, not just a benchmark).
//! 2. **serve** — a dynamic-batching [`Server`] answers a closed loop of
//!    single-example requests from several client threads; per-request
//!    latencies yield p50/p99 and wall-clock throughput.
//! 3. **policy sweep** — the bare engine runs one large batch under
//!    member-parallel, data-parallel, and auto plans.
//!
//! Run via `cargo run --release -p mn-bench --bin serving` — prints a
//! table and saves `results/serving.json`.

use std::time::Instant;

use mn_ensemble::engine::{ExecPolicy, InferenceEngine};
use mn_ensemble::serve::{BatchingConfig, Server};
use mn_ensemble::EnsembleManifest;
use mn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::kernels::bench_ensemble_members;
use crate::report::render_table;

/// Throughput of one engine execution policy on the sweep batch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PolicyThroughput {
    /// Policy label (`member-parallel`, `data-parallel`, `auto`).
    pub policy: String,
    /// Examples per second over the sweep batch.
    pub examples_per_sec: f64,
}

/// The full serving-bench report (saved as `results/serving.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServingBenchResult {
    /// Worker threads available to the engine.
    pub threads: usize,
    /// Ensemble members served.
    pub members: usize,
    /// Single-example requests answered by the server.
    pub requests: u64,
    /// Closed-loop client threads that issued them.
    pub clients: usize,
    /// Micro-batcher bound: max examples per engine call.
    pub max_batch: usize,
    /// Micro-batcher bound: max microseconds a batch stays open.
    pub max_wait_us: u64,
    /// Requests per second over the whole closed loop.
    pub throughput_rps: f64,
    /// Median end-to-end request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean examples per engine call the micro-batcher achieved.
    pub mean_batch: f64,
    /// Engine-level throughput of each parallelism policy on a large
    /// batch.
    pub policies: Vec<PolicyThroughput>,
}

impl ServingBenchResult {
    /// Renders the report as fixed-width tables.
    pub fn table(&self) -> String {
        let server_rows = vec![vec![
            format!("{}", self.requests),
            format!("{}", self.clients),
            format!("{:.0}", self.throughput_rps),
            format!("{:.2}", self.p50_ms),
            format!("{:.2}", self.p99_ms),
            format!("{:.1}", self.mean_batch),
        ]];
        let mut out = render_table(
            &[
                "requests",
                "clients",
                "req/s",
                "p50 ms",
                "p99 ms",
                "mean batch",
            ],
            &server_rows,
        );
        let policy_rows: Vec<Vec<String>> = self
            .policies
            .iter()
            .map(|p| vec![p.policy.clone(), format!("{:.0}", p.examples_per_sec)])
            .collect();
        out.push('\n');
        out.push_str(&render_table(
            &["engine policy", "examples/s"],
            &policy_rows,
        ));
        out
    }
}

/// Sorted-percentile over latencies in milliseconds.
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// Engine examples/second on `x` under `policy`, median of `reps` calls.
fn policy_examples_per_sec(
    engine: &mut InferenceEngine,
    policy: ExecPolicy,
    x: &Tensor,
    reps: usize,
) -> f64 {
    engine.set_policy(policy);
    let _ = engine.predict(x); // warm-up: fill workspaces / replica lanes
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(engine.predict(x));
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    x.shape().dim(0) as f64 / samples[samples.len() / 2]
}

/// Runs the save → load → serve smoke plus all measurements.
///
/// # Panics
///
/// Panics when the artifact round trip is not bitwise exact, or when the
/// server drops a request — both are correctness failures, not noise.
pub fn run(requests: usize, clients: usize, reps: usize) -> ServingBenchResult {
    let members = bench_ensemble_members();
    let num_members = members.len();
    let mut direct = InferenceEngine::new(members, 32).expect("bench ensemble builds");

    // --- save → load: cold start must be bitwise exact ---
    let bytes = direct.to_artifact_bytes(&EnsembleManifest::default());
    let mut loaded = InferenceEngine::from_artifact_bytes(&bytes, 32).expect("artifact round trip");
    let mut rng = StdRng::seed_from_u64(99);
    let probe = Tensor::randn([16, 3, 8, 8], 1.0, &mut rng);
    let a = direct.predict(&probe);
    let b = loaded.predict(&probe);
    for (m, (pa, pb)) in a.probs().iter().zip(b.probs()).enumerate() {
        assert_eq!(
            pa.data(),
            pb.data(),
            "member {m}: loaded engine diverged from in-memory engine"
        );
    }

    // --- serve: closed-loop single-example clients ---
    let cfg = BatchingConfig::default();
    let server = Server::start(loaded, cfg);
    let clients = clients.max(1);
    let per_client = requests.div_ceil(clients);
    let total = per_client * clients;
    let started = Instant::now();
    let mut latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = server.client();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(1000 + c as u64);
                    let mut lat = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let x = Tensor::randn([3, 8, 8], 1.0, &mut rng);
                        let prediction = client
                            .submit(&x)
                            .expect("server accepts well-formed example")
                            .wait()
                            .expect("server answers before shutdown");
                        lat.push(prediction.latency.as_secs_f64() * 1000.0);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread exits cleanly"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let stats = server.shutdown();
    assert_eq!(stats.requests, total as u64, "server dropped requests");
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    // --- engine policy sweep on a large batch ---
    let sweep = Tensor::randn([256, 3, 8, 8], 1.0, &mut rng);
    let mut engine =
        InferenceEngine::from_artifact_bytes(&bytes, 32).expect("artifact loads again");
    let threads = rayon::current_num_threads();
    let policies = vec![
        PolicyThroughput {
            policy: "member-parallel".to_string(),
            examples_per_sec: policy_examples_per_sec(
                &mut engine,
                ExecPolicy::MemberParallel,
                &sweep,
                reps,
            ),
        },
        PolicyThroughput {
            policy: "data-parallel".to_string(),
            examples_per_sec: policy_examples_per_sec(
                &mut engine,
                ExecPolicy::DataParallel { shards: threads },
                &sweep,
                reps,
            ),
        },
        PolicyThroughput {
            policy: "auto".to_string(),
            examples_per_sec: policy_examples_per_sec(&mut engine, ExecPolicy::Auto, &sweep, reps),
        },
    ];

    ServingBenchResult {
        threads,
        members: num_members,
        requests: total as u64,
        clients,
        max_batch: cfg.max_batch,
        max_wait_us: cfg.max_wait.as_micros() as u64,
        throughput_rps: total as f64 / wall,
        p50_ms: percentile_ms(&latencies_ms, 50.0),
        p99_ms: percentile_ms(&latencies_ms, 99.0),
        mean_batch: stats.mean_batch(),
        policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_and_renders() {
        let result = ServingBenchResult {
            threads: 4,
            members: 8,
            requests: 100,
            clients: 2,
            max_batch: 64,
            max_wait_us: 2000,
            throughput_rps: 1234.5,
            p50_ms: 1.5,
            p99_ms: 9.75,
            mean_batch: 6.5,
            policies: vec![PolicyThroughput {
                policy: "auto".into(),
                examples_per_sec: 9999.0,
            }],
        };
        let json = serde_json::to_string(&result).unwrap();
        let back: ServingBenchResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.requests, 100);
        assert_eq!(back.policies[0].policy, "auto");
        let table = result.table();
        assert!(table.contains("p99"));
        assert!(table.contains("auto"));
    }

    #[test]
    fn percentiles_pick_sorted_positions() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_ms(&sorted, 50.0), 3.0);
        assert_eq!(percentile_ms(&sorted, 100.0), 5.0);
        assert_eq!(percentile_ms(&sorted, 0.0), 1.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
    }

    #[test]
    fn smoke_run_save_load_serve() {
        // Small but end-to-end: exercises the bitwise round-trip assert,
        // the server closed loop, and the policy sweep.
        let result = run(24, 2, 1);
        assert_eq!(result.requests, 24);
        assert!(result.throughput_rps > 0.0);
        assert!(result.p99_ms >= result.p50_ms);
        assert_eq!(result.policies.len(), 3);
        for p in &result.policies {
            assert!(p.examples_per_sec > 0.0, "{p:?}");
        }
    }
}

//! Serving-stack measurements: cold start, dynamic batching, shard
//! scaling, and the engine's parallelism axes.
//!
//! The harness exercises the full production path once per run:
//!
//! 1. **save → load** — the 8-member bench ensemble is written as an
//!    `MNE1` artifact and booted back through
//!    [`EnginePlan::from_artifact_bytes`]; the run *asserts* the round
//!    trip is bitwise exact before measuring anything (a serving smoke
//!    check, not just a benchmark).
//! 2. **cold start** — artifact boot time, plus a direct comparison of
//!    the zero-init restore-target construction path
//!    (`Network::zeroed`) against the random-init path
//!    (`Network::seeded`); the run *asserts* zero-init is cheaper, since
//!    restore overwrites every sampled value anyway.
//! 3. **shard sweep** — a sharded [`Server`] (1, 2, and 4 worker shards
//!    over **one** shared plan) answers a closed loop of single-example
//!    requests from several client threads; per-request latencies yield
//!    p50/p99 and wall-clock throughput per shard count.
//! 4. **policy sweep** — a bare session runs one large batch under
//!    member-parallel, data-parallel, and auto plans.
//! 5. **cascade on skewed traffic** — an uncertainty-gated cascade
//!    (threshold from [`calibrate`]) serves a batch that is mostly easy
//!    (saturated) examples with a hard (near-uniform) minority, against
//!    the flat full-ensemble baseline on the same weights. Both sides
//!    are timed in a **single-thread pool**, so the numbers measure the
//!    compute the cascade eliminates (its capacity win under load)
//!    rather than idle-core wall-clock; the parallelism axes compose
//!    with the cascade and are measured separately above.
//!
//! 6. **worker kill** — a fault-injected worker panic mid-traffic
//!    (`faults::sites::QUEUE_POP`, one shot) against the supervised
//!    server: the scenario measures goodput before the kill, time until
//!    the first successful answer after it, and goodput after the
//!    supervisor respawns the shard. The CI gate holds post-kill goodput
//!    at ≥ 0.9x pre-kill.
//!
//! 7. **quantized artifacts** — the plan is saved under every
//!    `WeightEncoding` (`f32`/`f16`/`i8`); the scenario records artifact
//!    bytes, the resident `f32` weight footprint after load, and the
//!    served-probability drift each encoding costs, asserting the `i8`
//!    artifact is ≤ 0.30x the full-precision bytes.
//!
//! Run via `cargo run --release -p mn-bench --bin serving` — prints the
//! tables and saves `results/serving.json`.

use std::time::Instant;

use mn_ensemble::engine::{
    calibrate, Confidence, EnginePlan, EngineSession, ExecPolicy, InferenceEngine,
};
use mn_ensemble::faults::{self, FaultAction};
use mn_ensemble::serve::{BatchingConfig, ServeError, Server};
use mn_ensemble::{EnsembleManifest, EnsembleMember, WeightEncoding};
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec};
use mn_nn::{LayerNode, Network};
use mn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::kernels::bench_ensemble_members;
use crate::report::{median_ms, render_table};

/// Throughput of one engine execution policy on the sweep batch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PolicyThroughput {
    /// Policy label (`member-parallel`, `data-parallel`, `auto`).
    pub policy: String,
    /// Examples per second over the sweep batch.
    pub examples_per_sec: f64,
}

/// Closed-loop server measurements for one shard count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardSweepEntry {
    /// Worker shards (each an `EngineSession` over the shared plan).
    pub shards: usize,
    /// Requests per second over the whole closed loop.
    pub throughput_rps: f64,
    /// Median end-to-end request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean examples per engine call the micro-batchers achieved.
    pub mean_batch: f64,
}

/// Trunk-sharing measurements on a deep-shared-trunk ensemble: flat
/// (member-parallel) vs trunk-shared throughput on the same weights, with
/// outputs asserted bitwise identical before timing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrunkSharingResult {
    /// Members in the trunked ensemble.
    pub members: usize,
    /// Layer nodes per member.
    pub member_nodes: usize,
    /// Shared-prefix nodes the plan detected.
    pub trunk_len: usize,
    /// Analytic fraction of one member's parameters living in the shared
    /// trunk (the work the trunk plan runs once instead of `members`
    /// times).
    pub shared_params_fraction: f64,
    /// Examples/s under the flat member-parallel plan.
    pub flat_examples_per_sec: f64,
    /// Examples/s under the trunk-shared plan.
    pub trunk_examples_per_sec: f64,
    /// `trunk_examples_per_sec / flat_examples_per_sec`.
    pub speedup: f64,
}

/// Uncertainty-gated cascade vs flat full-ensemble execution on skewed
/// traffic (mostly easy examples, a hard minority), same weights.
///
/// Both throughputs are measured in a **single-thread pool**: the
/// cascade's win is the compute it skips, which a wall-clock measurement
/// on idle cores would hide (the gate costs one member either way; the
/// saving is the members that never run). Single-thread examples/s is
/// that saving directly — the extra per-core capacity a loaded server
/// gains.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CascadeServingResult {
    /// Members in the cascade ensemble (member 0 is the gate).
    pub members: usize,
    /// Confidence metric the gate scores with (`max-prob` / `margin`).
    pub metric: String,
    /// Exit threshold chosen by offline calibration.
    pub threshold: f64,
    /// Fraction of easy (saturated) examples in the skewed batch.
    pub easy_fraction: f64,
    /// Gate-vs-ensemble agreement the calibration demanded.
    pub min_agreement: f64,
    /// Fraction of the skewed batch that exited at the gate.
    pub early_exit_rate: f64,
    /// Fraction of examples whose cascade label differs from the flat
    /// full-ensemble label (the accuracy cost of early exits).
    pub label_mismatch_rate: f64,
    /// Flat full-ensemble examples/s, single-thread pool.
    pub flat_examples_per_sec: f64,
    /// Cascade examples/s on the same batch, single-thread pool.
    pub cascade_examples_per_sec: f64,
    /// `cascade_examples_per_sec / flat_examples_per_sec`.
    pub speedup: f64,
}

/// The worker-kill scenario: goodput before an injected worker panic,
/// recovery time, and goodput after the supervisor respawned the shard.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkerKillResult {
    /// Worker shards the server ran with.
    pub shards: usize,
    /// Successful answers per second before the kill.
    pub pre_kill_rps: f64,
    /// Successful answers per second after recovery.
    pub post_kill_rps: f64,
    /// `post_kill_rps / pre_kill_rps` — the CI floor holds this ≥ 0.9.
    pub recovery_ratio: f64,
    /// Milliseconds from the kill until the first successful answer.
    pub recovery_ms: f64,
    /// Requests lost to the panic (typed `WorkerGone`, never a hang).
    pub killed_requests: u64,
    /// Worker panics the server recorded (the injected one).
    pub worker_panics: u64,
    /// Shards the supervisor respawned.
    pub restarts: u64,
}

/// The quantized-artifact scenario: deployment footprint per
/// [`mn_ensemble::WeightEncoding`] plus the served-probability drift each
/// encoding costs, measured on the bench ensemble.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuantizationResult {
    /// Full-precision (`MNW1`-sectioned) artifact bytes.
    pub f32_artifact_bytes: u64,
    /// `f16`-encoded artifact bytes.
    pub f16_artifact_bytes: u64,
    /// `i8`-encoded artifact bytes.
    pub i8_artifact_bytes: u64,
    /// `f16_artifact_bytes / f32_artifact_bytes` (≈ 0.5).
    pub f16_ratio: f64,
    /// `i8_artifact_bytes / f32_artifact_bytes` — the CI gate holds this
    /// ≤ 0.30.
    pub i8_ratio: f64,
    /// Resident `f32` weight bytes once loaded ([`EnginePlan::param_bytes`])
    /// — identical for every encoding, since artifacts dequantize on load.
    pub resident_param_bytes: u64,
    /// Max absolute served-probability drift of the f16-loaded plan vs
    /// the f32-loaded plan on the probe batch.
    pub f16_prob_drift: f64,
    /// Same for the i8-loaded plan.
    pub i8_prob_drift: f64,
}

/// Cold-start timings (medians over repetitions).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ColdStartTimings {
    /// Booting the ensemble plan from `MNE1` artifact bytes,
    /// milliseconds (zero-init restore path).
    pub artifact_boot_ms: f64,
    /// Constructing every bench-ensemble network via `Network::zeroed`,
    /// milliseconds.
    pub zero_init_ms: f64,
    /// Constructing every bench-ensemble network via `Network::seeded`
    /// (Box–Muller sampling that a restore would immediately overwrite),
    /// milliseconds.
    pub seeded_init_ms: f64,
}

impl ColdStartTimings {
    /// Sampling cost eliminated by the zero-init restore path.
    pub fn init_speedup(&self) -> f64 {
        self.seeded_init_ms / self.zero_init_ms.max(1e-9)
    }
}

/// The full serving-bench report (saved as `results/serving.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServingBenchResult {
    /// Worker threads available to the engine.
    pub threads: usize,
    /// Ensemble members served.
    pub members: usize,
    /// Single-example requests answered per shard-sweep entry.
    pub requests: u64,
    /// Closed-loop client threads that issued them.
    pub clients: usize,
    /// Micro-batcher bound: max examples per engine call.
    pub max_batch: usize,
    /// Micro-batcher bound: max microseconds a batch stays open.
    pub max_wait_us: u64,
    /// Requests per second of the single-shard configuration (the
    /// baseline; the full curve is in `shard_sweep`).
    pub throughput_rps: f64,
    /// Single-shard median end-to-end request latency, milliseconds.
    pub p50_ms: f64,
    /// Single-shard 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Single-shard mean examples per engine call.
    pub mean_batch: f64,
    /// Cold-start timings and the zero-init construction win.
    pub cold_start: ColdStartTimings,
    /// Closed-loop measurements per shard count (1, 2, 4).
    pub shard_sweep: Vec<ShardSweepEntry>,
    /// Engine-level throughput of each parallelism policy on a large
    /// batch.
    pub policies: Vec<PolicyThroughput>,
    /// Trunk-shared vs flat execution on a deep-shared-trunk ensemble.
    pub trunk_sharing: TrunkSharingResult,
    /// Uncertainty-gated cascade vs flat execution on skewed traffic.
    pub cascade: CascadeServingResult,
    /// Goodput across an injected worker panic and supervised respawn.
    pub worker_kill: WorkerKillResult,
    /// Quantized-artifact footprint and served-probability drift.
    pub quantization: QuantizationResult,
}

impl ServingBenchResult {
    /// Renders the report as fixed-width tables.
    pub fn table(&self) -> String {
        let sweep_rows: Vec<Vec<String>> = self
            .shard_sweep
            .iter()
            .map(|e| {
                vec![
                    format!("{}", e.shards),
                    format!("{}", self.requests),
                    format!("{}", self.clients),
                    format!("{:.0}", e.throughput_rps),
                    format!("{:.2}", e.p50_ms),
                    format!("{:.2}", e.p99_ms),
                    format!("{:.1}", e.mean_batch),
                ]
            })
            .collect();
        let mut out = render_table(
            &[
                "shards",
                "requests",
                "clients",
                "req/s",
                "p50 ms",
                "p99 ms",
                "mean batch",
            ],
            &sweep_rows,
        );
        out.push('\n');
        out.push_str(&render_table(
            &["cold start", "ms"],
            &[
                vec![
                    "artifact boot".to_string(),
                    format!("{:.3}", self.cold_start.artifact_boot_ms),
                ],
                vec![
                    "zero-init nets".to_string(),
                    format!("{:.3}", self.cold_start.zero_init_ms),
                ],
                vec![
                    "seeded nets".to_string(),
                    format!("{:.3}", self.cold_start.seeded_init_ms),
                ],
            ],
        ));
        let policy_rows: Vec<Vec<String>> = self
            .policies
            .iter()
            .map(|p| vec![p.policy.clone(), format!("{:.0}", p.examples_per_sec)])
            .collect();
        out.push('\n');
        out.push_str(&render_table(
            &["engine policy", "examples/s"],
            &policy_rows,
        ));
        let t = &self.trunk_sharing;
        out.push('\n');
        out.push_str(&render_table(
            &["trunk sharing", "value"],
            &[
                vec![
                    "trunk nodes".to_string(),
                    format!("{}/{}", t.trunk_len, t.member_nodes),
                ],
                vec![
                    "shared params".to_string(),
                    format!("{:.1}%", t.shared_params_fraction * 100.0),
                ],
                vec![
                    "flat examples/s".to_string(),
                    format!("{:.0}", t.flat_examples_per_sec),
                ],
                vec![
                    "trunk examples/s".to_string(),
                    format!("{:.0}", t.trunk_examples_per_sec),
                ],
                vec!["speedup".to_string(), format!("{:.2}x", t.speedup)],
            ],
        ));
        let c = &self.cascade;
        out.push('\n');
        out.push_str(&render_table(
            &["cascade (1 thread)", "value"],
            &[
                vec![
                    "gate metric".to_string(),
                    format!("{} @ {:.3}", c.metric, c.threshold),
                ],
                vec![
                    "easy traffic".to_string(),
                    format!("{:.1}%", c.easy_fraction * 100.0),
                ],
                vec![
                    "early exits".to_string(),
                    format!("{:.1}%", c.early_exit_rate * 100.0),
                ],
                vec![
                    "label mismatch".to_string(),
                    format!("{:.2}%", c.label_mismatch_rate * 100.0),
                ],
                vec![
                    "flat examples/s".to_string(),
                    format!("{:.0}", c.flat_examples_per_sec),
                ],
                vec![
                    "cascade examples/s".to_string(),
                    format!("{:.0}", c.cascade_examples_per_sec),
                ],
                vec!["speedup".to_string(), format!("{:.2}x", c.speedup)],
            ],
        ));
        let w = &self.worker_kill;
        out.push('\n');
        out.push_str(&render_table(
            &["worker kill", "value"],
            &[
                vec!["shards".to_string(), format!("{}", w.shards)],
                vec![
                    "pre-kill req/s".to_string(),
                    format!("{:.0}", w.pre_kill_rps),
                ],
                vec![
                    "post-kill req/s".to_string(),
                    format!("{:.0}", w.post_kill_rps),
                ],
                vec![
                    "recovery ratio".to_string(),
                    format!("{:.2}x", w.recovery_ratio),
                ],
                vec!["recovery ms".to_string(), format!("{:.2}", w.recovery_ms)],
                vec![
                    "killed requests".to_string(),
                    format!("{}", w.killed_requests),
                ],
                vec![
                    "panics/restarts".to_string(),
                    format!("{}/{}", w.worker_panics, w.restarts),
                ],
            ],
        ));
        let q = &self.quantization;
        out.push('\n');
        out.push_str(&render_table(
            &["quantized artifact", "bytes", "ratio", "prob drift"],
            &[
                vec![
                    "f32".to_string(),
                    format!("{}", q.f32_artifact_bytes),
                    "1.00x".to_string(),
                    "0".to_string(),
                ],
                vec![
                    "f16".to_string(),
                    format!("{}", q.f16_artifact_bytes),
                    format!("{:.2}x", q.f16_ratio),
                    format!("{:.2e}", q.f16_prob_drift),
                ],
                vec![
                    "i8".to_string(),
                    format!("{}", q.i8_artifact_bytes),
                    format!("{:.2}x", q.i8_ratio),
                    format!("{:.2e}", q.i8_prob_drift),
                ],
                vec![
                    "resident f32".to_string(),
                    format!("{}", q.resident_param_bytes),
                    "-".to_string(),
                    "-".to_string(),
                ],
            ],
        ));
        out
    }
}

/// Sorted-percentile over latencies in milliseconds.
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// Engine examples/second on `x` under `policy`, median of `reps` calls
/// (the shared helper's warm-up call also fills workspaces / replica
/// lanes).
fn policy_examples_per_sec(
    engine: &mut InferenceEngine,
    policy: ExecPolicy,
    x: &Tensor,
    reps: usize,
) -> f64 {
    engine.set_policy(policy);
    let ms = median_ms(reps, || {
        std::hint::black_box(engine.predict(x));
    });
    x.shape().dim(0) as f64 / (ms / 1000.0)
}

/// Cold-start timings; asserts the zero-init construction path is
/// actually cheaper than sampling a random init that restore would
/// overwrite.
fn measure_cold_start(
    bytes: &[u8],
    archs: &[mn_nn::arch::Architecture],
    reps: usize,
) -> ColdStartTimings {
    let reps = reps.max(5);
    let artifact_boot_ms = median_ms(reps, || {
        std::hint::black_box(EnginePlan::from_artifact_bytes(bytes, 32).expect("artifact boots"));
    });
    let zero_init_ms = median_ms(reps, || {
        for arch in archs {
            std::hint::black_box(Network::zeroed(arch));
        }
    });
    let seeded_init_ms = median_ms(reps, || {
        for (s, arch) in archs.iter().enumerate() {
            std::hint::black_box(Network::seeded(arch, s as u64));
        }
    });
    let timings = ColdStartTimings {
        artifact_boot_ms,
        zero_init_ms,
        seeded_init_ms,
    };
    // The point of the zero-init path: restore targets skip Box–Muller
    // sampling entirely, so construction must be measurably cheaper.
    assert!(
        timings.zero_init_ms < timings.seeded_init_ms,
        "zero-init construction ({:.3} ms) should beat random init ({:.3} ms)",
        timings.zero_init_ms,
        timings.seeded_init_ms
    );
    timings
}

/// The trunk-sharing scenario: an 8-member ensemble whose members are
/// head-perturbed clones of one deep convolutional base — the shape a
/// MotherNets hatch produces (shared conv trunk, divergent classifier).
fn deep_trunk_members() -> Vec<EnsembleMember> {
    let arch = Architecture::plain(
        "trunked",
        InputSpec::new(3, 8, 8),
        10,
        vec![
            ConvBlockSpec::repeated(3, 8, 2),
            ConvBlockSpec::repeated(3, 8, 2),
        ],
        vec![16],
    );
    let base = Network::seeded(&arch, 77);
    (0..8)
        .map(|s| {
            let mut net = base.clone();
            match net.nodes_mut().last_mut() {
                Some(LayerNode::Dense(l)) => {
                    for w in l.weight.value.data_mut() {
                        *w += (s as f32 + 1.0) * 0.01;
                    }
                }
                other => panic!("expected a dense head, got {other:?}"),
            }
            EnsembleMember::new(format!("t{s}"), net)
        })
        .collect()
}

/// Measures flat vs trunk-shared throughput on the deep-trunk ensemble,
/// asserting first that the plan detected the trunk and that both paths
/// produce bitwise-identical output.
fn measure_trunk_sharing(reps: usize) -> TrunkSharingResult {
    let plan = EnginePlan::new(deep_trunk_members(), 32)
        .expect("trunked ensemble builds")
        .into_shared();
    assert!(
        plan.shares_trunk(),
        "deep-trunk bench ensemble must share a parameterized trunk"
    );
    let trunk_len = plan.trunk_len();
    let nodes = plan.members()[0].network.nodes();
    let member_nodes = nodes.len();
    let params_in = |nodes: &[LayerNode]| -> usize {
        nodes
            .iter()
            .map(|n| {
                let mut count = 0usize;
                n.visit_state(&mut |t| count += t.len());
                count
            })
            .sum()
    };
    let shared_params_fraction =
        params_in(&nodes[..trunk_len]) as f64 / params_in(nodes).max(1) as f64;

    let mut rng = StdRng::seed_from_u64(5);
    let x = Tensor::randn([256, 3, 8, 8], 1.0, &mut rng);
    let mut engine = InferenceEngine::from_plan(std::sync::Arc::clone(&plan));
    let trunk_policy = ExecPolicy::TrunkShared {
        shards: rayon::current_num_threads(),
    };
    // Correctness gate before timing anything: the two paths must agree
    // bit for bit.
    engine.set_policy(ExecPolicy::MemberParallel);
    let flat_out = engine.predict(&x);
    engine.set_policy(trunk_policy);
    let trunk_out = engine.predict(&x);
    for (m, (a, b)) in flat_out.probs().iter().zip(trunk_out.probs()).enumerate() {
        assert_eq!(
            a.data(),
            b.data(),
            "member {m}: trunk-shared output diverged from flat"
        );
    }

    let flat = policy_examples_per_sec(&mut engine, ExecPolicy::MemberParallel, &x, reps);
    let trunk = policy_examples_per_sec(&mut engine, trunk_policy, &x, reps);
    TrunkSharingResult {
        members: plan.num_members(),
        member_nodes,
        trunk_len,
        shared_params_fraction,
        flat_examples_per_sec: flat,
        trunk_examples_per_sec: trunk,
        speedup: trunk / flat.max(1e-9),
    }
}

/// The cascade scenario ensemble: the deep-trunk architecture with
/// *genuinely diverged* classifier heads (multiplicative noise per
/// member), so the gate can actually disagree with the full ensemble on
/// hard examples — a uniform additive head shift would cancel under
/// softmax and make every member identical.
fn cascade_members() -> Vec<EnsembleMember> {
    let arch = Architecture::plain(
        "cascaded",
        InputSpec::new(3, 8, 8),
        10,
        vec![
            ConvBlockSpec::repeated(3, 8, 2),
            ConvBlockSpec::repeated(3, 8, 2),
        ],
        vec![16],
    );
    let base = Network::seeded(&arch, 78);
    (0..8)
        .map(|s| {
            let mut net = base.clone();
            let mut rng = StdRng::seed_from_u64(900 + s as u64);
            match net.nodes_mut().last_mut() {
                Some(LayerNode::Dense(l)) => {
                    for w in l.weight.value.data_mut() {
                        *w *= 1.0 + rng.gen_range(-0.15..0.15f32);
                    }
                }
                other => panic!("expected a dense head, got {other:?}"),
            }
            EnsembleMember::new(format!("c{s}"), net)
        })
        .collect()
}

/// A skewed traffic batch: mostly easy examples (large-magnitude inputs
/// that saturate the softmax) with an interleaved hard minority
/// (near-zero inputs whose logits land near uniform). Returns the batch
/// and the realized easy fraction.
fn skewed_batch(n: usize, seed: u64) -> (Tensor, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let row = 3 * 8 * 8;
    let mut data = Vec::with_capacity(n * row);
    let mut easy = 0usize;
    for i in 0..n {
        // Every 7th request is hard -> ~86% easy traffic, interleaved the
        // way a live request stream would be.
        let scale = if i % 7 == 3 {
            0.05
        } else {
            easy += 1;
            6.0
        };
        let x = Tensor::randn([row], scale, &mut rng);
        data.extend_from_slice(x.data());
    }
    (
        Tensor::from_vec([n, 3, 8, 8], data),
        easy as f64 / n.max(1) as f64,
    )
}

/// Scored-prediction examples/second under `policy` (cascade plans only
/// run through `predict_scored`; the flat baseline uses the same entry
/// point so both sides pay the same annotation cost).
fn scored_examples_per_sec(
    session: &mut EngineSession,
    policy: ExecPolicy,
    x: &Tensor,
    reps: usize,
) -> f64 {
    session.set_policy(policy);
    let ms = median_ms(reps, || {
        std::hint::black_box(session.predict_scored(x));
    });
    x.shape().dim(0) as f64 / (ms / 1000.0)
}

/// Calibrates and measures the uncertainty-gated cascade against the
/// flat full ensemble on skewed traffic, inside a single-thread pool
/// (see [`CascadeServingResult`] for why single-thread).
///
/// Asserts that calibration found a usable threshold and that the
/// cascade actually exited early on the easy majority — a zero exit
/// rate would mean the scenario is measuring nothing.
fn measure_cascade(reps: usize) -> CascadeServingResult {
    let plan = EnginePlan::new(cascade_members(), 32)
        .expect("cascade ensemble builds")
        .into_shared();
    assert!(
        plan.shares_trunk(),
        "cascade bench ensemble must share a trunk so the gate reuses it"
    );
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread bench pool builds");
    pool.install(|| {
        let (cal_x, _) = skewed_batch(128, 41);
        let (x, easy_fraction) = skewed_batch(256, 42);
        let min_agreement = 0.98;
        let mut session = plan.session();
        let calibration = calibrate(&mut session, &cal_x, Confidence::MaxProb, min_agreement);
        let policy = calibration.policy;
        assert!(
            policy.threshold > 0.0,
            "calibration found no separable confident prefix on the skewed batch"
        );

        // Accuracy cost: cascade labels vs the flat full-ensemble labels.
        session.set_policy(ExecPolicy::MemberParallel);
        let flat_labels = session.predict_scored(&x).labels();
        session.set_policy(ExecPolicy::Cascade(policy));
        let scored = session.predict_scored(&x);
        let early_exit_rate = scored.early_exit_rate();
        assert!(
            early_exit_rate > 0.0,
            "cascade never exited early on mostly-easy traffic"
        );
        let n = flat_labels.len();
        let mismatches = flat_labels
            .iter()
            .zip(scored.labels())
            .filter(|(a, b)| *a != b)
            .count();

        let flat = scored_examples_per_sec(&mut session, ExecPolicy::MemberParallel, &x, reps);
        let casc = scored_examples_per_sec(&mut session, ExecPolicy::Cascade(policy), &x, reps);
        CascadeServingResult {
            members: plan.num_members(),
            metric: policy.metric.label().to_string(),
            threshold: policy.threshold as f64,
            easy_fraction,
            min_agreement,
            early_exit_rate,
            label_mismatch_rate: mismatches as f64 / n.max(1) as f64,
            flat_examples_per_sec: flat,
            cascade_examples_per_sec: casc,
            speedup: casc / flat.max(1e-9),
        }
    })
}

/// Closed-loop single-example clients against a sharded server over the
/// shared plan; panics if the server drops a request.
fn closed_loop(
    plan: &std::sync::Arc<EnginePlan>,
    shards: usize,
    cfg: BatchingConfig,
    per_client: usize,
    clients: usize,
) -> ShardSweepEntry {
    let server = Server::builder(std::sync::Arc::clone(plan))
        .shards(shards)
        .batching(cfg)
        .start();
    let total = per_client * clients;
    let started = Instant::now();
    let mut latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = server.client();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(1000 + c as u64);
                    let mut lat = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let x = Tensor::randn([3, 8, 8], 1.0, &mut rng);
                        let prediction = client
                            .submit(&x)
                            .expect("closed-loop client stays under the queue bound")
                            .wait()
                            .expect("server answers before shutdown");
                        lat.push(prediction.latency.as_secs_f64() * 1000.0);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread exits cleanly"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let report = server.shutdown();
    assert_eq!(
        report.aggregate.requests, total as u64,
        "server dropped requests at {shards} shard(s)"
    );
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ShardSweepEntry {
        shards,
        throughput_rps: total as f64 / wall,
        p50_ms: percentile_ms(&latencies_ms, 50.0),
        p99_ms: percentile_ms(&latencies_ms, 99.0),
        mean_batch: report.aggregate.mean_batch(),
    }
}

/// Closed-loop goodput against an already-running server: successful
/// answers per second, tolerating typed losses (a killed worker's
/// in-flight requests resolve to [`ServeError::WorkerGone`]).
fn goodput_rps(server: &Server, clients: usize, per_client: usize, seed: u64) -> (f64, u64) {
    let started = Instant::now();
    let ok: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let client = server.client();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed + c as u64);
                    let mut ok = 0u64;
                    for _ in 0..per_client {
                        let x = Tensor::randn([3, 8, 8], 1.0, &mut rng);
                        match client.submit(&x) {
                            Ok(pending) => {
                                if pending.wait().is_ok() {
                                    ok += 1;
                                }
                            }
                            Err(ServeError::Overloaded { .. }) => {}
                            Err(e) => panic!("unexpected submit error: {e}"),
                        }
                    }
                    ok
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread exits cleanly"))
            .sum()
    });
    let wall = started.elapsed().as_secs_f64();
    (ok as f64 / wall, ok)
}

/// Kills one worker mid-traffic with a one-shot injected panic at the
/// queue-pop failpoint, then measures how the supervised server recovers:
/// goodput before vs after, and the time from the kill to the first
/// successful answer. Asserts the panic fired, that the supervisor
/// respawned the shard, and that every request resolved to a typed
/// outcome.
fn measure_worker_kill(
    plan: &std::sync::Arc<EnginePlan>,
    clients: usize,
    per_client: usize,
) -> WorkerKillResult {
    let shards = 2;
    let server = Server::builder(std::sync::Arc::clone(plan))
        .shards(shards)
        .batching(BatchingConfig::default())
        .restart_budget(4)
        .restart_backoff(std::time::Duration::from_millis(1))
        .start();

    let (pre_kill_rps, pre_ok) = goodput_rps(&server, clients, per_client, 2000);
    assert!(pre_ok > 0, "pre-kill phase must answer requests");

    // The kill: the next queue pop panics the worker that performs it.
    let scope = faults::scope();
    scope.enable_times(faults::sites::QUEUE_POP, FaultAction::Panic, 1);
    let kill_at = Instant::now();
    let mut killed_requests = 0u64;
    let mut rng = StdRng::seed_from_u64(3000);
    let recovery_ms = loop {
        let x = Tensor::randn([3, 8, 8], 1.0, &mut rng);
        match server
            .submit(&x)
            .expect("kill-phase submits stay under the queue bound")
            .wait()
        {
            Ok(_) if faults::fired(faults::sites::QUEUE_POP) >= 1 => {
                break kill_at.elapsed().as_secs_f64() * 1000.0;
            }
            Ok(_) => {} // the armed pop hasn't happened yet; keep driving
            Err(ServeError::WorkerGone) => killed_requests += 1,
            Err(e) => panic!("unexpected kill-phase outcome: {e}"),
        }
    };
    drop(scope);

    let (post_kill_rps, post_ok) = goodput_rps(&server, clients, per_client, 4000);
    assert!(post_ok > 0, "post-kill phase must answer requests");

    let report = server.shutdown();
    assert_eq!(report.worker_panics, 1, "exactly the injected panic fired");
    assert_eq!(report.restarts, 1, "the supervisor respawned the shard");
    WorkerKillResult {
        shards,
        pre_kill_rps,
        post_kill_rps,
        recovery_ratio: post_kill_rps / pre_kill_rps.max(1e-9),
        recovery_ms,
        killed_requests,
        worker_panics: report.worker_panics,
        restarts: report.restarts,
    }
}

/// The quantization scenario: saves the plan under every
/// [`WeightEncoding`], records artifact bytes and resident weight
/// footprint, then boots each quantized artifact and measures the
/// served-probability drift against the full-precision plan.
///
/// # Panics
///
/// Panics when the `i8` artifact exceeds 0.30x the `f32` bytes or a
/// quantized artifact fails to boot/serve — footprint and loadability
/// are the contract, not noise.
fn measure_quantization(
    plan: &std::sync::Arc<EnginePlan>,
    f32_bytes: &[u8],
    probe: &Tensor,
) -> QuantizationResult {
    let manifest = EnsembleManifest::default();
    let f16_bytes = plan
        .to_artifact_bytes_quantized(&manifest, WeightEncoding::F16)
        .expect("bench weights are finite");
    let i8_bytes = plan
        .to_artifact_bytes_quantized(&manifest, WeightEncoding::I8)
        .expect("bench weights are finite");
    let f16_ratio = f16_bytes.len() as f64 / f32_bytes.len() as f64;
    let i8_ratio = i8_bytes.len() as f64 / f32_bytes.len() as f64;
    assert!(
        i8_ratio <= 0.30,
        "i8 artifact is {i8_ratio:.3}x the f32 bytes (contract: <= 0.30x)"
    );
    let reference = plan.session().predict_average(probe);
    let drift = |bytes: &[u8]| -> f64 {
        let served = EnginePlan::from_artifact_bytes(bytes, 32)
            .expect("quantized artifact boots")
            .into_shared()
            .session()
            .predict_average(probe);
        mn_tensor::max_abs_diff(reference.data(), served.data()) as f64
    };
    let f16_prob_drift = drift(&f16_bytes);
    let i8_prob_drift = drift(&i8_bytes);
    QuantizationResult {
        f32_artifact_bytes: f32_bytes.len() as u64,
        f16_artifact_bytes: f16_bytes.len() as u64,
        i8_artifact_bytes: i8_bytes.len() as u64,
        f16_ratio,
        i8_ratio,
        resident_param_bytes: plan.param_bytes() as u64,
        f16_prob_drift,
        i8_prob_drift,
    }
}

/// Runs the save → load → serve smoke plus all measurements.
///
/// # Panics
///
/// Panics when the artifact round trip is not bitwise exact, when the
/// zero-init construction path is not cheaper than random init, or when
/// the server drops a request — all correctness failures, not noise.
pub fn run(requests: usize, clients: usize, reps: usize) -> ServingBenchResult {
    let members = bench_ensemble_members();
    let num_members = members.len();
    let direct_plan = EnginePlan::new(members, 32)
        .expect("bench ensemble builds")
        .into_shared();
    let mut direct = direct_plan.session();

    // --- save → load: cold start must be bitwise exact ---
    let bytes = direct_plan.to_artifact_bytes(&EnsembleManifest::default());
    let loaded_plan = EnginePlan::from_artifact_bytes(&bytes, 32)
        .expect("artifact round trip")
        .into_shared();
    let mut loaded = loaded_plan.session();
    let mut rng = StdRng::seed_from_u64(99);
    let probe = Tensor::randn([16, 3, 8, 8], 1.0, &mut rng);
    let a = direct.predict(&probe);
    let b = loaded.predict(&probe);
    for (m, (pa, pb)) in a.probs().iter().zip(b.probs()).enumerate() {
        assert_eq!(
            pa.data(),
            pb.data(),
            "member {m}: loaded plan diverged from in-memory plan"
        );
    }
    drop(loaded);

    // --- cold start: artifact boot + zero-init vs seeded construction ---
    // (architectures come from the loaded plan — no need to build another
    // fully-sampled ensemble just to read them)
    let archs: Vec<_> = loaded_plan
        .members()
        .iter()
        .map(|m| m.network.arch().clone())
        .collect();
    let cold_start = measure_cold_start(&bytes, &archs, reps);

    // --- shard sweep: 1, 2, 4 worker shards over ONE shared plan ---
    // The requested count is rounded up here, once, to an even per-client
    // share; closed_loop and the report both derive from it.
    let cfg = BatchingConfig::default();
    let clients = clients.max(1);
    let per_client = requests.div_ceil(clients);
    let total = per_client * clients;
    let shard_sweep: Vec<ShardSweepEntry> = [1usize, 2, 4]
        .iter()
        .map(|&s| closed_loop(&loaded_plan, s, cfg, per_client, clients))
        .collect();
    let baseline = shard_sweep[0].clone();

    // --- engine policy sweep on a large batch ---
    let sweep = Tensor::randn([256, 3, 8, 8], 1.0, &mut rng);
    let mut engine = InferenceEngine::from_plan(std::sync::Arc::clone(&loaded_plan));
    let threads = rayon::current_num_threads();
    let policies = vec![
        PolicyThroughput {
            policy: "member-parallel".to_string(),
            examples_per_sec: policy_examples_per_sec(
                &mut engine,
                ExecPolicy::MemberParallel,
                &sweep,
                reps,
            ),
        },
        PolicyThroughput {
            policy: "data-parallel".to_string(),
            examples_per_sec: policy_examples_per_sec(
                &mut engine,
                ExecPolicy::DataParallel { shards: threads },
                &sweep,
                reps,
            ),
        },
        PolicyThroughput {
            policy: "auto".to_string(),
            examples_per_sec: policy_examples_per_sec(&mut engine, ExecPolicy::Auto, &sweep, reps),
        },
    ];

    // --- trunk sharing: flat vs shared-prefix execution ---
    let trunk_sharing = measure_trunk_sharing(reps);

    // --- cascade: uncertainty-gated early exit on skewed traffic ---
    let cascade = measure_cascade(reps);

    // --- worker kill: goodput across a supervised panic + respawn ---
    let worker_kill = measure_worker_kill(&loaded_plan, clients, per_client);

    // --- quantized artifacts: footprint + served-probability drift ---
    let quantization = measure_quantization(&loaded_plan, &bytes, &probe);

    ServingBenchResult {
        threads,
        members: num_members,
        requests: total as u64,
        clients,
        max_batch: cfg.max_batch,
        max_wait_us: cfg.max_wait.as_micros() as u64,
        throughput_rps: baseline.throughput_rps,
        p50_ms: baseline.p50_ms,
        p99_ms: baseline.p99_ms,
        mean_batch: baseline.mean_batch,
        cold_start,
        shard_sweep,
        policies,
        trunk_sharing,
        cascade,
        worker_kill,
        quantization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_and_renders() {
        let result = ServingBenchResult {
            threads: 4,
            members: 8,
            requests: 100,
            clients: 2,
            max_batch: 64,
            max_wait_us: 2000,
            throughput_rps: 1234.5,
            p50_ms: 1.5,
            p99_ms: 9.75,
            mean_batch: 6.5,
            cold_start: ColdStartTimings {
                artifact_boot_ms: 2.0,
                zero_init_ms: 0.5,
                seeded_init_ms: 2.5,
            },
            shard_sweep: vec![ShardSweepEntry {
                shards: 2,
                throughput_rps: 2000.0,
                p50_ms: 1.0,
                p99_ms: 4.0,
                mean_batch: 5.0,
            }],
            policies: vec![PolicyThroughput {
                policy: "auto".into(),
                examples_per_sec: 9999.0,
            }],
            trunk_sharing: TrunkSharingResult {
                members: 8,
                member_nodes: 18,
                trunk_len: 17,
                shared_params_fraction: 0.94,
                flat_examples_per_sec: 1000.0,
                trunk_examples_per_sec: 4000.0,
                speedup: 4.0,
            },
            cascade: CascadeServingResult {
                members: 8,
                metric: "max-prob".into(),
                threshold: 0.4,
                easy_fraction: 0.86,
                min_agreement: 0.98,
                early_exit_rate: 0.85,
                label_mismatch_rate: 0.01,
                flat_examples_per_sec: 500.0,
                cascade_examples_per_sec: 2000.0,
                speedup: 4.0,
            },
            worker_kill: WorkerKillResult {
                shards: 2,
                pre_kill_rps: 1000.0,
                post_kill_rps: 950.0,
                recovery_ratio: 0.95,
                recovery_ms: 12.5,
                killed_requests: 1,
                worker_panics: 1,
                restarts: 1,
            },
            quantization: QuantizationResult {
                f32_artifact_bytes: 1000,
                f16_artifact_bytes: 510,
                i8_artifact_bytes: 265,
                f16_ratio: 0.51,
                i8_ratio: 0.265,
                resident_param_bytes: 980,
                f16_prob_drift: 1.2e-4,
                i8_prob_drift: 3.4e-3,
            },
        };
        let json = serde_json::to_string(&result).unwrap();
        let back: ServingBenchResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.requests, 100);
        assert_eq!(back.policies[0].policy, "auto");
        assert_eq!(back.shard_sweep[0].shards, 2);
        assert!((back.cold_start.init_speedup() - 5.0).abs() < 1e-9);
        assert_eq!(back.trunk_sharing.trunk_len, 17);
        assert_eq!(back.cascade.metric, "max-prob");
        assert!((back.cascade.speedup - 4.0).abs() < 1e-9);
        let table = result.table();
        assert!(table.contains("p99"));
        assert!(table.contains("auto"));
        assert!(table.contains("zero-init"));
        assert!(table.contains("trunk"));
        assert!(table.contains("cascade"));
        assert!(table.contains("early exits"));
        assert!(table.contains("worker kill"));
        assert!(table.contains("recovery ratio"));
        assert!((back.worker_kill.recovery_ratio - 0.95).abs() < 1e-9);
        assert!(table.contains("quantized artifact"));
        assert!(table.contains("resident f32"));
        assert!((back.quantization.i8_ratio - 0.265).abs() < 1e-9);
    }

    #[test]
    fn percentiles_pick_sorted_positions() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_ms(&sorted, 50.0), 3.0);
        assert_eq!(percentile_ms(&sorted, 100.0), 5.0);
        assert_eq!(percentile_ms(&sorted, 0.0), 1.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
    }

    #[test]
    fn smoke_run_save_load_serve() {
        // Small but end-to-end: exercises the bitwise round-trip assert,
        // the cold-start assert, the shard sweep, and the policy sweep.
        let result = run(24, 2, 1);
        assert_eq!(result.requests, 24);
        assert!(result.throughput_rps > 0.0);
        assert!(result.p99_ms >= result.p50_ms);
        assert_eq!(result.shard_sweep.len(), 3);
        assert_eq!(
            result
                .shard_sweep
                .iter()
                .map(|e| e.shards)
                .collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        for e in &result.shard_sweep {
            assert!(e.throughput_rps > 0.0, "{e:?}");
        }
        assert!(result.cold_start.zero_init_ms < result.cold_start.seeded_init_ms);
        assert_eq!(result.policies.len(), 3);
        for p in &result.policies {
            assert!(p.examples_per_sec > 0.0, "{p:?}");
        }
        // The trunk scenario detected a deep shared prefix (the bitwise
        // flat-vs-trunk agreement is asserted inside the measurement);
        // speedup itself is only pinned in the release-mode CI gate.
        let t = &result.trunk_sharing;
        assert_eq!(t.members, 8);
        assert!(t.trunk_len > 0 && t.trunk_len < t.member_nodes);
        assert!(t.shared_params_fraction > 0.5, "{t:?}");
        assert!(t.flat_examples_per_sec > 0.0 && t.trunk_examples_per_sec > 0.0);
        // The cascade scenario calibrated a usable threshold and exited
        // early on the easy majority (both asserted inside the
        // measurement); the >= 1.2x speedup itself is the release-mode
        // CI gate's job.
        let c = &result.cascade;
        assert_eq!(c.members, 8);
        assert!(c.threshold > 0.0 && c.early_exit_rate > 0.0, "{c:?}");
        assert!(c.easy_fraction > 0.5, "{c:?}");
        assert!(c.flat_examples_per_sec > 0.0 && c.cascade_examples_per_sec > 0.0);
        // The worker-kill scenario recorded exactly the injected panic
        // and its respawn (asserted inside the measurement); the ≥ 0.9x
        // goodput-recovery floor is the release-mode CI gate's job.
        let w = &result.worker_kill;
        assert_eq!(w.worker_panics, 1);
        assert_eq!(w.restarts, 1);
        assert!(w.pre_kill_rps > 0.0 && w.post_kill_rps > 0.0);
        assert!(w.recovery_ms >= 0.0);
        // The quantization scenario hit its footprint contract (the
        // i8 ≤ 0.30x assert lives inside the measurement) and served
        // within sane drift of full precision.
        let q = &result.quantization;
        assert!(q.f16_ratio > 0.4 && q.f16_ratio <= 0.55, "{q:?}");
        assert!(q.i8_ratio > 0.2 && q.i8_ratio <= 0.30, "{q:?}");
        assert!(q.resident_param_bytes > 0);
        assert!(q.f16_prob_drift > 0.0 && q.f16_prob_drift < 0.05, "{q:?}");
        assert!(q.i8_prob_drift > 0.0 && q.i8_prob_drift < 0.25, "{q:?}");
        assert!(q.f16_prob_drift <= q.i8_prob_drift, "{q:?}");
    }
}

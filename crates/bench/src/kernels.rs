//! Kernel- and engine-level speedup measurements (the "BENCH json"
//! numbers backing the performance-layer claims).
//!
//! The headline comparisons:
//!
//! * **matmul** — the blocked, register-tiled [`mn_tensor::ops::matmul`]
//!   vs the naive [`mn_tensor::ops::reference::matmul`] on a
//!   256×256×256 product;
//! * **conv layer** — im2col + blocked GEMM vs the direct (pre-PR)
//!   kernel on a representative VGG-style layer shape;
//! * **SIMD dispatch** — the same blocked GEMM with the micro-kernel
//!   dispatched to the explicit-AVX2 backend vs pinned to the portable
//!   scalar backend (skipped on CPUs without AVX2+FMA). The
//!   [`KernelBenchResult::compiled_avx2`] flag records whether the build
//!   itself targeted AVX2, which decides where CI gates the speedup;
//! * **ensemble inference** — the batched parallel
//!   [`mn_ensemble::InferenceEngine`] vs the naive path — members run
//!   one-by-one on a single thread with the pre-PR direct convolution
//!   formulation and no workspace reuse — on an 8-member convolutional
//!   ensemble.
//!
//! Run via `cargo run --release -p mn-bench --bin kernels` — prints a
//! table and saves `results/kernels.json`.

use mn_ensemble::{EnsembleMember, InferenceEngine, MemberPredictions};
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec};
use mn_nn::layers::ConvFormulation;
use mn_nn::{LayerNode, Network};
use mn_tensor::{conv, im2col, ops, Tensor, Workspace};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::{median_ms, render_table};

/// One timed comparison: a baseline implementation vs its optimized
/// replacement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KernelComparison {
    /// What is being measured.
    pub name: String,
    /// Baseline (naive path) milliseconds per call, median over reps.
    pub baseline_ms: f64,
    /// Optimized path milliseconds per call, median over reps.
    pub optimized_ms: f64,
    /// `baseline_ms / optimized_ms`.
    pub speedup: f64,
}

/// The full kernel-bench report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KernelBenchResult {
    /// Worker threads available to the parallel paths.
    pub threads: usize,
    /// Whether the *build* already compiles AVX2 into the scalar path
    /// (`target-cpu=native` on an AVX2+ host). CI gates the explicit-SIMD
    /// speedup only when this is `false`: on native builds the
    /// autovectorized scalar path is itself AVX2/AVX-512 code, so the
    /// explicit kernel's win shows on *portable* builds (the artifact
    /// every non-native deployment actually runs).
    pub compiled_avx2: bool,
    /// The kernel backend runtime dispatch selected for this run
    /// (`"scalar"` or `"avx2"`, after `MN_SIMD` and auto-detection).
    pub simd_backend: String,
    /// All comparisons, in measurement order.
    pub comparisons: Vec<KernelComparison>,
}

impl KernelBenchResult {
    /// Looks up a comparison by name.
    pub fn get(&self, name: &str) -> Option<&KernelComparison> {
        self.comparisons.iter().find(|c| c.name == name)
    }

    /// Renders the report as a fixed-width table.
    pub fn table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .comparisons
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    format!("{:.3}", c.baseline_ms),
                    format!("{:.3}", c.optimized_ms),
                    format!("{:.2}x", c.speedup),
                ]
            })
            .collect();
        render_table(
            &["comparison", "baseline ms", "optimized ms", "speedup"],
            &rows,
        )
    }
}

fn compare(
    name: &str,
    reps: usize,
    baseline: impl FnMut(),
    optimized: impl FnMut(),
) -> KernelComparison {
    let baseline_ms = median_ms(reps, baseline);
    let optimized_ms = median_ms(reps, optimized);
    KernelComparison {
        name: name.to_string(),
        baseline_ms,
        optimized_ms,
        speedup: baseline_ms / optimized_ms.max(1e-9),
    }
}

/// Forces every convolution in a network onto `formulation` (the
/// benchmark's lever for reproducing the pre-PR direct-kernel path).
pub fn force_conv_formulation(net: &mut Network, formulation: ConvFormulation) {
    for node in net.nodes_mut() {
        match node {
            LayerNode::Conv(l) => l.set_formulation(formulation),
            LayerNode::Residual(r) => {
                r.conv1.set_formulation(formulation);
                r.conv2.set_formulation(formulation);
            }
            _ => {}
        }
    }
}

/// The 8-member convolutional ensemble the inference comparison serves.
pub fn bench_ensemble_members() -> Vec<EnsembleMember> {
    let input = InputSpec::new(3, 8, 8);
    (0..8u64)
        .map(|s| {
            let arch = Architecture::plain(
                format!("m{s}"),
                input,
                10,
                vec![
                    ConvBlockSpec::repeated(3, 8 + (s as usize % 3) * 2, 1),
                    ConvBlockSpec::repeated(3, 16, 1),
                ],
                vec![32],
            );
            EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s))
        })
        .collect()
}

/// Runs every comparison and returns the report.
pub fn run(reps: usize) -> KernelBenchResult {
    let mut comparisons = Vec::new();

    // --- matmul: 256x256x256, blocked vs naive ---
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let a = Tensor::randn([256, 256], 1.0, &mut rng);
    let b = Tensor::randn([256, 256], 1.0, &mut rng);
    comparisons.push(compare(
        "matmul_256",
        reps,
        || {
            std::hint::black_box(ops::reference::matmul(&a, &b));
        },
        || {
            std::hint::black_box(ops::matmul(&a, &b));
        },
    ));

    // --- conv layer formulation: direct (pre-PR) vs im2col + GEMM ---
    let input = Tensor::randn([32, 16, 8, 8], 1.0, &mut rng);
    let weight = Tensor::randn([16, 16, 3, 3], 1.0, &mut rng);
    let cbias = Tensor::zeros([16]);
    let mut conv_ws = Workspace::new();
    comparisons.push(compare(
        "conv3x3_c16_b32",
        reps,
        || {
            std::hint::black_box(conv::conv2d_forward(&input, &weight, &cbias, 1));
        },
        || {
            let y = im2col::conv2d_forward_im2col_ws(&input, &weight, &cbias, 1, &mut conv_ws);
            conv_ws.release(std::hint::black_box(y));
        },
    ));

    // --- explicit-SIMD GEMM dispatch: scalar backend vs AVX2 backend ---
    // Skipped (not a zero-row lie) when the CPU lacks AVX2+FMA. Both
    // sides run the *blocked* kernel; only the micro-kernel dispatch
    // differs, so this isolates exactly what the runtime backend buys.
    if mn_tensor::simd::avx2_available() {
        comparisons.push(compare(
            "gemm_simd_dispatch_256",
            reps,
            || {
                mn_tensor::simd::with_backend(mn_tensor::simd::Backend::Scalar, || {
                    std::hint::black_box(ops::matmul(&a, &b));
                });
            },
            || {
                mn_tensor::simd::with_backend(mn_tensor::simd::Backend::Avx2, || {
                    std::hint::black_box(ops::matmul(&a, &b));
                });
            },
        ));
    }

    // --- 8-member ensemble inference over a 64-example request batch ---
    let x = Tensor::randn([64, 3, 8, 8], 1.0, &mut rng);
    let single_thread = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool builds");
    let mut naive_members = bench_ensemble_members();
    for m in naive_members.iter_mut() {
        force_conv_formulation(&mut m.network, ConvFormulation::Direct);
    }
    let mut engine =
        InferenceEngine::new(bench_ensemble_members(), 32).expect("bench ensemble builds");
    comparisons.push(compare(
        "ensemble_infer_8x64",
        reps,
        || {
            // Naive path: one core, members one-by-one, direct-formulation
            // convolutions, fresh allocations per call.
            single_thread.install(|| {
                std::hint::black_box(MemberPredictions::collect(&mut naive_members, &x, 32));
            });
        },
        || {
            std::hint::black_box(engine.predict(&x));
        },
    ));

    KernelBenchResult {
        threads: rayon::current_num_threads(),
        compiled_avx2: cfg!(target_feature = "avx2"),
        simd_backend: mn_tensor::simd::active().label().to_string(),
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_and_renders() {
        let result = KernelBenchResult {
            threads: 2,
            compiled_avx2: false,
            simd_backend: "scalar".into(),
            comparisons: vec![KernelComparison {
                name: "matmul_256".into(),
                baseline_ms: 2.0,
                optimized_ms: 0.5,
                speedup: 4.0,
            }],
        };
        let json = serde_json::to_string(&result).unwrap();
        let back: KernelBenchResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("matmul_256").unwrap().speedup, 4.0);
        assert!(back.get("absent").is_none());
        assert!(result.table().contains("4.00x"));
    }

    #[test]
    fn smoke_run_produces_positive_timings() {
        // One rep keeps this cheap; the real numbers come from the bin.
        let result = run(1);
        let expected = if mn_tensor::simd::avx2_available() {
            4
        } else {
            3
        };
        assert_eq!(result.comparisons.len(), expected);
        assert!(result.simd_backend == "scalar" || result.simd_backend == "avx2");
        for c in &result.comparisons {
            assert!(c.baseline_ms > 0.0 && c.optimized_ms > 0.0, "{c:?}");
            assert!(c.speedup.is_finite());
        }
    }
}

//! Ablation study: which parts of the MotherNets recipe matter?
//!
//! Nine configurations on the same ensemble and data, isolating each design
//! choice the paper (and DESIGN.md) calls out:
//!
//! * member fine-tuning data — bagging (paper) vs full data vs none;
//! * hatch noise — symmetry breaking on vs exact transfer;
//! * fine-tuning learning rate — scaled (default) vs full rate;
//! * clustering τ — 0.5 (paper) vs 1.0 (every member its own MotherNet);
//! * against all three non-MotherNets strategies, including the
//!   snapshot-ensemble comparator from the related work (§4).

use mn_data::presets::cifar10_sim;
use mn_data::sampler::train_val_split;
use mn_data::Scale;
use mn_ensemble::diversity::pairwise_disagreement;
use mn_ensemble::{evaluate_members, MemberPredictions};
use mothernets::{train_ensemble, MemberTraining, MotherNetsStrategy, SnapshotStrategy, Strategy};
use serde::{Deserialize, Serialize};

use crate::experiments::{to_percent, ExpConfig};
use crate::report::{pct, render_table, save_json, MethodErrors};
use crate::zoo::vgg_large_ensemble;

/// One ablation configuration's outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// MotherNet clusters used (0 for non-MotherNets strategies).
    pub clusters: usize,
    /// Test errors.
    pub errors: MethodErrors,
    /// Total sequential-equivalent training seconds.
    pub total_wall_secs: f64,
    /// Total deterministic cost units.
    pub total_cost_units: f64,
    /// Mean member epochs to convergence.
    pub mean_member_epochs: f64,
    /// Mean pairwise disagreement of the members on the test set.
    pub diversity: f64,
}

/// Runs the ablation grid and saves `ablation.json`.
pub fn run_ablation(cfg: &ExpConfig) -> Vec<AblationRow> {
    let n = cfg.n_override.unwrap_or(match cfg.scale {
        Scale::Tiny => 4,
        Scale::Small => 8,
        Scale::Full => 12,
    });
    println!(
        "\n== Ablation: MotherNets design choices ({n} VGG variants, CIFAR-10 sim, scale {}) ==",
        cfg.scale
    );
    let task = cifar10_sim(cfg.scale, cfg.seed);
    let mut archs = vgg_large_ensemble(n, task.train.num_classes());
    archs.sort_by_key(|a| a.param_count());
    let tc = cfg.ensemble_train_config();
    let (_, val) = train_val_split(&task.train, tc.val_fraction, tc.seed);

    let base = MotherNetsStrategy::default();
    let grid: Vec<(&str, Strategy)> = vec![
        ("MotherNets (paper recipe)", Strategy::MotherNets(base)),
        (
            "MN members on full data",
            Strategy::MotherNets(MotherNetsStrategy {
                member_training: MemberTraining::FullData,
                ..base
            }),
        ),
        (
            "MN no member training",
            Strategy::MotherNets(MotherNetsStrategy {
                member_training: MemberTraining::None,
                ..base
            }),
        ),
        (
            "MN exact hatch (no noise)",
            Strategy::MotherNets(MotherNetsStrategy {
                hatch_noise: 0.0,
                ..base
            }),
        ),
        (
            "MN full member lr",
            Strategy::MotherNets(MotherNetsStrategy {
                member_lr_scale: 1.0,
                ..base
            }),
        ),
        (
            "MN tau = 1.0 (no sharing)",
            Strategy::MotherNets(MotherNetsStrategy { tau: 1.0, ..base }),
        ),
        ("full-data baseline", Strategy::FullData),
        ("bagging baseline", Strategy::Bagging),
        (
            "snapshot ensembles",
            Strategy::Snapshot(SnapshotStrategy::default()),
        ),
    ];

    let mut rows = Vec::with_capacity(grid.len());
    for (label, strategy) in grid {
        println!("  running: {label}...");
        let mut trained =
            train_ensemble(&archs, &task.train, &strategy, &tc).expect("valid ensemble");
        let eval = evaluate_members(
            &mut trained.members,
            task.test.images(),
            task.test.labels(),
            val.images(),
            val.labels(),
            cfg.eval_batch(),
        );
        let test_preds =
            MemberPredictions::collect(&mut trained.members, task.test.images(), cfg.eval_batch());
        rows.push(AblationRow {
            label: label.to_string(),
            clusters: trained.clustering.as_ref().map(|c| c.len()).unwrap_or(0),
            errors: to_percent(&eval),
            total_wall_secs: trained.total_wall_secs(),
            total_cost_units: trained.total_cost_units(),
            mean_member_epochs: trained.mean_member_epochs(),
            diversity: pairwise_disagreement(&test_preds),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.clusters.to_string(),
                pct(r.errors.ea),
                pct(r.errors.vote),
                pct(r.errors.sl),
                pct(r.errors.oracle),
                format!("{:.1}", r.total_wall_secs),
                format!("{:.1}", r.mean_member_epochs),
                format!("{:.3}", r.diversity),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "configuration",
                "clusters",
                "EA",
                "Vote",
                "SL",
                "Oracle",
                "secs",
                "epochs",
                "diversity"
            ],
            &table
        )
    );
    save_json(&cfg.out_dir, "ablation", &rows);
    rows
}

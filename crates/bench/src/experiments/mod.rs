//! The figure/table harness: one module per experiment of the paper's
//! evaluation, each regenerating the corresponding rows/series.
//!
//! | Paper artifact | Function |
//! |----------------|----------|
//! | Table 1        | [`small_ensemble::run_table1`] |
//! | Figure 5       | [`small_ensemble::run_fig5`] |
//! | Figure 6       | [`large::run_fig6`] |
//! | Figure 7       | [`large::run_fig7`] |
//! | Figure 8       | [`large::run_fig8`] |
//! | Figure 9       | [`large::run_fig9`] |
//! | Figure 10      | [`oracle::run_fig10`] |
//! | Ablation (DESIGN.md §7–8) | [`ablation::run_ablation`] |

pub mod ablation;
pub mod large;
pub mod oracle;
pub mod small_ensemble;

use std::path::PathBuf;

use mn_data::Scale;
use mn_ensemble::EnsembleEvaluation;
use mn_nn::train::TrainConfig;
use mothernets::EnsembleTrainConfig;

use crate::report::MethodErrors;

/// Shared configuration for every experiment run.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Experiment scale (data volume, epoch caps, ensemble sizes).
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Override the figure's default ensemble size.
    pub n_override: Option<usize>,
    /// Directory for JSON results.
    pub out_dir: PathBuf,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: Scale::Small,
            seed: 7,
            n_override: None,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExpConfig {
    /// The per-network training configuration for this scale. The same
    /// convergence criterion is used for MotherNets, hatched members, and
    /// baselines (paper §3).
    pub fn ensemble_train_config(&self) -> EnsembleTrainConfig {
        let train = match self.scale {
            Scale::Tiny => TrainConfig {
                max_epochs: 3,
                patience: 2,
                min_delta: 0.01,
                ..TrainConfig::default()
            },
            Scale::Small => TrainConfig {
                max_epochs: 20,
                patience: 2,
                min_delta: 0.015,
                ..TrainConfig::default()
            },
            Scale::Full => TrainConfig {
                max_epochs: 40,
                patience: 3,
                min_delta: 0.01,
                ..TrainConfig::default()
            },
        };
        // Members are trained sequentially: on a small CPU, parallel
        // training contends for cores and inflates per-network wall-clock
        // times, which are exactly what the figures report.
        EnsembleTrainConfig {
            train,
            val_fraction: 0.15,
            seed: self.seed,
            parallel: false,
        }
    }

    /// Evaluation batch size.
    pub fn eval_batch(&self) -> usize {
        64
    }
}

/// Converts an [`EnsembleEvaluation`] (fractions) to percent.
pub fn to_percent(eval: &EnsembleEvaluation) -> MethodErrors {
    MethodErrors {
        ea: eval.ea_error * 100.0,
        vote: eval.vote_error * 100.0,
        sl: eval.sl_error * 100.0,
        oracle: eval.oracle_error * 100.0,
    }
}

/// Roughly `points` ensemble sizes in `[1, n]`, always including 1 and `n`.
pub fn sample_ks(n: usize, points: usize) -> Vec<usize> {
    assert!(n >= 1, "need at least one member");
    if n <= points {
        return (1..=n).collect();
    }
    let mut ks: Vec<usize> = (0..points)
        .map(|i| 1 + (i * (n - 1)) / (points - 1))
        .collect();
    ks.dedup();
    ks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_ks_includes_endpoints() {
        let ks = sample_ks(100, 9);
        assert_eq!(*ks.first().unwrap(), 1);
        assert_eq!(*ks.last().unwrap(), 100);
        assert!(ks.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(sample_ks(3, 10), vec![1, 2, 3]);
        assert_eq!(sample_ks(1, 5), vec![1]);
    }

    #[test]
    fn config_scales_epoch_caps() {
        let tiny = ExpConfig {
            scale: Scale::Tiny,
            ..Default::default()
        };
        let full = ExpConfig {
            scale: Scale::Full,
            ..Default::default()
        };
        assert!(
            tiny.ensemble_train_config().train.max_epochs
                < full.ensemble_train_config().train.max_epochs
        );
    }
}

//! Figure 10: oracle error versus ensemble size for all four large
//! ensembles, aggregated from the saved Figure 6–9 results.

use crate::experiments::ExpConfig;
use crate::report::{load_json, pct, render_table, save_json, LargeEnsembleResult};

/// A row of the Figure 10 aggregation.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct OracleCurve {
    /// Source figure (fig6..fig9).
    pub figure: String,
    /// Data-set / family label.
    pub label: String,
    /// Ensemble sizes sampled.
    pub ks: Vec<usize>,
    /// Oracle error (%) at each size.
    pub oracle: Vec<f32>,
}

/// Runs Figure 10 by aggregating the oracle columns of the saved large
/// ensemble results.
///
/// # Errors
///
/// Returns a message naming any missing prerequisite result file.
pub fn run_fig10(cfg: &ExpConfig) -> Result<Vec<OracleCurve>, String> {
    println!("\n== Figure 10: oracle error rate of large ensembles ==");
    let mut curves = Vec::new();
    for figure in ["fig6", "fig7", "fig8", "fig9"] {
        let r: LargeEnsembleResult = load_json(&cfg.out_dir, figure)?;
        curves.push(OracleCurve {
            figure: figure.to_string(),
            label: format!("{}, {}", r.family, r.dataset),
            ks: r.points.iter().map(|p| p.k).collect(),
            oracle: r.points.iter().map(|p| p.errors.oracle).collect(),
        });
    }

    for curve in &curves {
        println!("\n-- {} ({}) --", curve.label, curve.figure);
        let rows: Vec<Vec<String>> = curve
            .ks
            .iter()
            .zip(&curve.oracle)
            .map(|(k, o)| vec![k.to_string(), pct(*o)])
            .collect();
        println!("{}", render_table(&["k", "oracle error (%)"], &rows));
        let first = *curve.oracle.first().expect("non-empty");
        let last = *curve.oracle.last().expect("non-empty");
        println!(
            "oracle error improves {} -> {} as networks are added ({})",
            pct(first),
            pct(last),
            if last <= first {
                "improving, as in the paper"
            } else {
                "NOT improving"
            }
        );
    }
    save_json(&cfg.out_dir, "fig10", &curves);
    Ok(curves)
}

//! Figures 6–9: large-ensemble sweeps — error and cumulative training time
//! versus ensemble size, MotherNets against the full-data and bagging
//! baselines.

use mn_data::presets::{cifar100_sim, cifar10_sim, svhn_sim};
use mn_data::sampler::train_val_split;
use mn_data::{Scale, SyntheticTask};
use mn_ensemble::{evaluate_predictions, MemberPredictions};
use mn_nn::arch::Architecture;
use mothernets::{train_ensemble, Strategy, TrainedEnsemble};

use crate::experiments::{sample_ks, to_percent, ExpConfig};
use crate::report::{pct, render_table, save_json, CurvePoint, LargeEnsembleResult};
use crate::zoo::{resnet_ensemble, vgg_large_ensemble};

struct LargeSpec {
    figure: &'static str,
    dataset: &'static str,
    family: &'static str,
    default_n: fn(Scale) -> usize,
    make_task: fn(Scale, u64) -> SyntheticTask,
    make_archs: fn(usize, usize) -> Vec<Architecture>,
}

/// Figure 6: up to 100 VGGNet variants on CIFAR-10 (sim).
pub fn run_fig6(cfg: &ExpConfig) -> LargeEnsembleResult {
    run_large(
        &LargeSpec {
            figure: "fig6",
            dataset: "CIFAR-10 (sim)",
            family: "VGGNet",
            default_n: |s| match s {
                Scale::Tiny => 6,
                Scale::Small => 30,
                Scale::Full => 100,
            },
            make_task: cifar10_sim,
            make_archs: vgg_large_ensemble,
        },
        cfg,
    )
}

/// Figure 7: up to 100 VGGNet variants on CIFAR-100 (sim).
pub fn run_fig7(cfg: &ExpConfig) -> LargeEnsembleResult {
    run_large(
        &LargeSpec {
            figure: "fig7",
            dataset: "CIFAR-100 (sim)",
            family: "VGGNet",
            default_n: |s| match s {
                Scale::Tiny => 6,
                Scale::Small => 30,
                Scale::Full => 100,
            },
            make_task: cifar100_sim,
            make_archs: vgg_large_ensemble,
        },
        cfg,
    )
}

/// Figure 8: up to 50 VGGNet variants on SVHN (sim).
pub fn run_fig8(cfg: &ExpConfig) -> LargeEnsembleResult {
    run_large(
        &LargeSpec {
            figure: "fig8",
            dataset: "SVHN (sim)",
            family: "VGGNet",
            default_n: |s| match s {
                Scale::Tiny => 5,
                Scale::Small => 20,
                Scale::Full => 50,
            },
            make_task: svhn_sim,
            make_archs: vgg_large_ensemble,
        },
        cfg,
    )
}

/// Figure 9: up to 25 ResNets (5 depths × 5 width variants) on CIFAR-10
/// (sim), trained with τ = 0.5 clustering.
pub fn run_fig9(cfg: &ExpConfig) -> LargeEnsembleResult {
    run_large(
        &LargeSpec {
            figure: "fig9",
            dataset: "CIFAR-10 (sim)",
            family: "ResNet",
            default_n: |s| match s {
                Scale::Tiny => 5,
                Scale::Small => 10,
                Scale::Full => 25,
            },
            make_task: cifar10_sim,
            // n is rounded up to whole depth groups of 5.
            make_archs: |n, classes| {
                let depths = n.div_ceil(5).clamp(1, 5);
                resnet_ensemble(depths, classes)
            },
        },
        cfg,
    )
}

fn run_large(spec: &LargeSpec, cfg: &ExpConfig) -> LargeEnsembleResult {
    let n_requested = cfg.n_override.unwrap_or((spec.default_n)(cfg.scale));
    let task = (spec.make_task)(cfg.scale, cfg.seed);
    let archs = (spec.make_archs)(n_requested, task.train.num_classes());
    let n = archs.len();
    println!(
        "\n== {}: large ensemble ({} {} nets, {}, scale {}) ==",
        spec.figure, n, spec.family, spec.dataset, cfg.scale
    );
    let tc = cfg.ensemble_train_config();

    // The paper trains members "in ascending order of their size" for the
    // ResNet figure; sort all large ensembles the same way so prefix
    // ensembles are meaningful.
    let mut archs = archs;
    archs.sort_by_key(|a| a.param_count());

    println!("  training with MotherNets...");
    let mut mn = train_ensemble(&archs, &task.train, &Strategy::mothernets(), &tc)
        .expect("zoo ensemble is valid");
    let clusters = mn.clustering.as_ref().map(|c| c.len()).unwrap_or(0);
    println!("    ({} cluster(s) at tau = 0.5)", clusters);
    println!("  training with full-data...");
    let fd = train_ensemble(&archs, &task.train, &Strategy::FullData, &tc)
        .expect("zoo ensemble is valid");
    println!("  training with bagging...");
    let bag = train_ensemble(&archs, &task.train, &Strategy::Bagging, &tc)
        .expect("zoo ensemble is valid");

    // Collect per-member predictions once; prefix ensembles re-use them.
    let (_, val) = train_val_split(&task.train, tc.val_fraction, tc.seed);
    let test_preds =
        MemberPredictions::collect(&mut mn.members, task.test.images(), cfg.eval_batch());
    let val_preds = MemberPredictions::collect(&mut mn.members, val.images(), cfg.eval_batch());

    let ks = sample_ks(n, 9);
    let mut points = Vec::with_capacity(ks.len());
    for &k in &ks {
        let eval = evaluate_predictions(
            &test_preds.prefix(k),
            task.test.labels(),
            &val_preds.prefix(k),
            val.labels(),
        );
        points.push(CurvePoint {
            k,
            errors: to_percent(&eval),
            mn_secs: mn.cumulative_wall_secs(k),
            fd_secs: fd.cumulative_wall_secs(k),
            bag_secs: bag.cumulative_wall_secs(k),
            mn_cost: mn.cumulative_cost_units(k),
            fd_cost: fd.cumulative_cost_units(k),
            bag_cost: bag.cumulative_cost_units(k),
        });
    }

    // Baseline accuracies at full size, for the accuracy-ordering claim.
    let mut fd = fd;
    let fd_eval = {
        let tp = MemberPredictions::collect(&mut fd.members, task.test.images(), cfg.eval_batch());
        let vp = MemberPredictions::collect(&mut fd.members, val.images(), cfg.eval_batch());
        evaluate_predictions(&tp, task.test.labels(), &vp, val.labels())
    };
    let mut bag = bag;
    let bag_eval = {
        let tp = MemberPredictions::collect(&mut bag.members, task.test.images(), cfg.eval_batch());
        let vp = MemberPredictions::collect(&mut bag.members, val.images(), cfg.eval_batch());
        evaluate_predictions(&tp, task.test.labels(), &vp, val.labels())
    };

    let result = LargeEnsembleResult {
        figure: spec.figure.to_string(),
        dataset: spec.dataset.to_string(),
        family: spec.family.to_string(),
        scale: cfg.scale.to_string(),
        seed: cfg.seed,
        n,
        clusters,
        points,
        fd_errors: to_percent(&fd_eval),
        bag_errors: to_percent(&bag_eval),
        mn_member_epochs: mn.mean_member_epochs(),
        fd_member_epochs: fd_member_epochs(&fd),
    };
    print_large(&result);
    save_json(&cfg.out_dir, spec.figure, &result);
    result
}

fn fd_member_epochs(fd: &TrainedEnsemble) -> f64 {
    fd.mean_member_epochs()
}

fn print_large(r: &LargeEnsembleResult) {
    println!(
        "\n-- {}a: test error rate (%) vs number of networks (MotherNets) --",
        r.figure
    );
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.k.to_string(),
                pct(p.errors.ea),
                pct(p.errors.vote),
                pct(p.errors.sl),
                pct(p.errors.oracle),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["k", "EA", "Vote", "SL", "Oracle"], &rows)
    );

    println!(
        "-- {}b: cumulative training time (s) vs number of networks --",
        r.figure
    );
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.k.to_string(),
                format!("{:.1}", p.fd_secs),
                format!("{:.1}", p.bag_secs),
                format!("{:.1}", p.mn_secs),
                format!("{:.2}x", p.fd_secs / p.mn_secs.max(1e-12)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["k", "full-data", "bagging", "MotherNets", "speedup vs FD"],
            &rows
        )
    );
    println!(
        "context: at k = {}, full-data EA error {}%, bagging EA error {}%, MotherNets EA error {}%",
        r.n,
        pct(r.fd_errors.ea),
        pct(r.bag_errors.ea),
        pct(r.points.last().expect("non-empty").errors.ea),
    );
    println!(
        "mean member epochs: MotherNets {:.1} vs full-data {:.1} (hatched networks converge faster)",
        r.mn_member_epochs, r.fd_member_epochs
    );
}

//! Table 1 and Figure 5: the small five-VGGNet ensemble on CIFAR-10 (sim).

use mn_data::presets::cifar10_sim;
use mn_data::sampler::train_val_split;
use mn_ensemble::evaluate_members;
use mothernets::{train_ensemble, Strategy, TrainedEnsemble};

use crate::experiments::{to_percent, ExpConfig};
use crate::report::{
    pct, render_table, save_json, NamedTime, SmallEnsembleResult, StrategyOutcome,
};
use crate::zoo::vgg_small_ensemble;

/// Prints the Table 1 analogue: the five scaled-down VGG variants with
/// their per-block layer specifications and parameter counts.
pub fn run_table1() {
    println!("\n== Table 1: VGGNet variants in the small ensemble (scaled-down) ==");
    println!("   notation: <filter_size>:<filter_number>\n");
    let ens = vgg_small_ensemble(10);
    let rows: Vec<Vec<String>> = ens
        .iter()
        .map(|a| {
            let mut row = vec![a.name.clone()];
            match &a.body {
                mn_nn::arch::Body::Plain { blocks, dense } => {
                    for b in blocks {
                        row.push(format!("{b}"));
                    }
                    row.push(format!("dense {dense:?}"));
                }
                _ => unreachable!("zoo VGGs are plain"),
            }
            row.push(a.param_count().to_string());
            row
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["net", "subnet 1", "subnet 2", "subnet 3", "head", "params"],
            &rows
        )
    );
}

fn outcome(
    label: &str,
    trained: &mut TrainedEnsemble,
    task: &mn_data::SyntheticTask,
    cfg: &ExpConfig,
) -> StrategyOutcome {
    let tc = cfg.ensemble_train_config();
    // Reconstruct the same validation split the trainer used, for fitting
    // the super learner without test leakage.
    let (_, val) = train_val_split(&task.train, tc.val_fraction, tc.seed);
    let eval = evaluate_members(
        &mut trained.members,
        task.test.images(),
        task.test.labels(),
        val.images(),
        val.labels(),
        cfg.eval_batch(),
    );
    let times = |records: &[mothernets::MemberRecord]| -> Vec<NamedTime> {
        records
            .iter()
            .map(|r| NamedTime {
                name: r.name.clone(),
                wall_secs: r.wall_secs,
                epochs: r.epochs,
                cost_units: r.cost_units,
            })
            .collect()
    };
    StrategyOutcome {
        strategy: label.to_string(),
        errors: to_percent(&eval),
        member_times: times(&trained.member_records),
        mother_times: times(&trained.mother_records),
        total_wall_secs: trained.total_wall_secs(),
        total_cost_units: trained.total_cost_units(),
        mean_member_epochs: trained.mean_member_epochs(),
    }
}

/// Runs Figure 5: trains the Table 1 ensemble with bagging, full-data, and
/// MotherNets; reports error under EA / SL / Vote / Oracle (5a) and the
/// per-network training-time breakdown (5b).
pub fn run_fig5(cfg: &ExpConfig) -> SmallEnsembleResult {
    println!(
        "\n== Figure 5: small ensemble (5 VGGNets, CIFAR-10 sim, scale {}) ==",
        cfg.scale
    );
    let task = cifar10_sim(cfg.scale, cfg.seed);
    let archs = vgg_small_ensemble(task.train.num_classes());
    let tc = cfg.ensemble_train_config();

    let mut outcomes = Vec::new();
    for (label, strategy) in [
        ("bagging", Strategy::Bagging),
        ("full-data", Strategy::FullData),
        ("MotherNets", Strategy::mothernets()),
    ] {
        println!("  training with {label}...");
        let mut trained =
            train_ensemble(&archs, &task.train, &strategy, &tc).expect("zoo ensemble is valid");
        outcomes.push(outcome(label, &mut trained, &task, cfg));
    }

    // Figure 5a: error rate by inference method.
    println!("\n-- Fig 5a: test error rate (%) --");
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.strategy.clone(),
                pct(o.errors.ea),
                pct(o.errors.sl),
                pct(o.errors.vote),
                pct(o.errors.oracle),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["strategy", "EA", "SL", "Vote", "Oracle"], &rows)
    );

    // Figure 5b: training-time breakdown.
    println!("-- Fig 5b: training time split between networks (seconds) --");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for o in &outcomes {
        for t in o.mother_times.iter().chain(&o.member_times) {
            rows.push(vec![
                o.strategy.clone(),
                t.name.clone(),
                format!("{:.2}", t.wall_secs),
                t.epochs.to_string(),
                format!("{:.3e}", t.cost_units),
            ]);
        }
        rows.push(vec![
            o.strategy.clone(),
            "TOTAL".into(),
            format!("{:.2}", o.total_wall_secs),
            format!("{:.1} mean member epochs", o.mean_member_epochs),
            format!("{:.3e}", o.total_cost_units),
        ]);
    }
    println!(
        "{}",
        render_table(&["strategy", "network", "secs", "epochs", "cost"], &rows)
    );

    let fd = outcomes
        .iter()
        .find(|o| o.strategy == "full-data")
        .expect("fd present");
    let bag = outcomes
        .iter()
        .find(|o| o.strategy == "bagging")
        .expect("bag present");
    let mn = outcomes
        .iter()
        .find(|o| o.strategy == "MotherNets")
        .expect("mn present");
    println!(
        "speedup: MotherNets is {:.2}x faster than full-data, {:.2}x faster than bagging",
        fd.total_wall_secs / mn.total_wall_secs.max(1e-12),
        bag.total_wall_secs / mn.total_wall_secs.max(1e-12)
    );

    let result = SmallEnsembleResult {
        scale: cfg.scale.to_string(),
        seed: cfg.seed,
        outcomes,
    };
    save_json(&cfg.out_dir, "fig5", &result);
    result
}

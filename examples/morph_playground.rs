//! Function-preserving transformations, one at a time (paper Figure 3).
//!
//! ```text
//! cargo run --release --example morph_playground
//! ```
//!
//! Applies each transformation class — deepen, widen, grow kernels — to a
//! trained network and verifies that the outputs are unchanged, printing
//! the parameter growth and the observed output deviation for each.

use mn_morph::{ops, MorphOptions, MorphPlan};
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec};
use mn_nn::{Mode, Network};
use mn_tensor::{max_abs_diff, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check(label: &str, source: &mut Network, target: &mut Network) {
    let mut rng = StdRng::seed_from_u64(99);
    let x = Tensor::randn([8, 3, 8, 8], 1.0, &mut rng);
    let a = source.forward(&x, Mode::Eval);
    let b = target.forward(&x, Mode::Eval);
    let diff = max_abs_diff(a.data(), b.data());
    let plan = MorphPlan::between(source.arch(), target.arch()).expect("compatible");
    println!(
        "{label:<28} params {:>6} -> {:>6}  ({:>5.1}% inherited)  max|Δout| = {diff:.2e}",
        source.arch().param_count(),
        target.arch().param_count(),
        plan.inherited_fraction * 100.0,
    );
}

fn main() {
    let arch = Architecture::plain(
        "base",
        InputSpec::new(3, 8, 8),
        10,
        vec![
            ConvBlockSpec::repeated(3, 8, 2),
            ConvBlockSpec::repeated(3, 16, 2),
        ],
        vec![32],
    );
    let mut base = Network::seeded(&arch, 1);

    // Give the network a non-trivial function: a few training steps.
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::randn([16, 3, 8, 8], 1.0, &mut rng);
    for _ in 0..5 {
        let y = base.forward(&x, Mode::Train);
        base.backward(&y);
        base.zero_grad();
    }
    base.clear_caches();

    let exact = MorphOptions::exact();
    println!("Each row applies ONE function-preserving transformation:\n");

    let mut widened = ops::widen_conv_layer(&base, 0, 1, 16, &exact).expect("widen");
    check("widen conv (Fig 3b)", &mut base, &mut widened);

    let mut grown = ops::expand_conv_kernel(&base, 1, 0, 5, &exact).expect("kernel");
    check("grow kernel 3->5 (Fig 3c)", &mut base, &mut grown);

    let mut deepened = ops::deepen_block(&base, 1, 1, &exact).expect("deepen");
    check("deepen block (Fig 3a)", &mut base, &mut deepened);

    let mut dense_wide = ops::widen_dense_layer(&base, 0, 64, &exact).expect("dense widen");
    check("widen dense layer", &mut base, &mut dense_wide);

    let mut dense_deep = ops::add_dense_layer(&base, 32, &exact).expect("dense deepen");
    check("add dense layer", &mut base, &mut dense_deep);

    // Composition: everything at once, with symmetry-breaking noise.
    let target = Architecture::plain(
        "member",
        InputSpec::new(3, 8, 8),
        10,
        vec![
            ConvBlockSpec::repeated(5, 16, 3),
            ConvBlockSpec::repeated(3, 24, 3),
        ],
        vec![64, 64],
    );
    let mut composed = mn_morph::morph_to(&base, &target).expect("compose");
    check("ALL of the above composed", &mut base, &mut composed);

    let mut noisy = mn_morph::morph_to_with(&base, &target, &MorphOptions::with_noise(5e-3, 3))
        .expect("compose with noise");
    check("composed + training noise", &mut base, &mut noisy);

    println!("\nExact transfers deviate only by float error; the noisy hatch deviates");
    println!("slightly by design (symmetry breaking for further training).");
}

//! Serving throughput demo: batched parallel ensemble inference.
//!
//! ```text
//! cargo run --release --example serve_throughput
//! ```
//!
//! Builds an 8-member convolutional ensemble, then walks the whole
//! serving stack:
//!
//! 1. **naive vs engine** — members one-by-one on a single thread with
//!    the pre-optimization direct convolution kernels (the state of the
//!    repo before the performance layer) against the
//!    [`mn_ensemble::InferenceEngine`] (parallel fan-out, persistent
//!    workspaces, blocked GEMM);
//! 2. **parallelism axes** — the same engine under member-parallel,
//!    data-parallel, and auto plans, verified bitwise identical;
//! 3. **artifact cold start** — the ensemble is saved as an `MNE1`
//!    artifact and booted back (zero-init restore), bitwise exact;
//! 4. **sharded dynamic batching** — a [`mn_ensemble::Server`] built via
//!    [`mn_ensemble::ServerBuilder`] runs two worker shards over ONE
//!    shared [`mn_ensemble::EnginePlan`] (no weight clones) and answers
//!    a burst of single-example requests, reporting latency, micro-batch
//!    fill, and the per-shard split.
//!
//! Speedups are execution-strategy changes, never model changes — every
//! step asserts its predictions against the previous one.

use std::time::Instant;

use mn_bench::kernels::{bench_ensemble_members, force_conv_formulation};
use mn_ensemble::serve::{BatchingConfig, Server};
use mn_ensemble::{EnginePlan, EnsembleManifest, ExecPolicy, InferenceEngine, MemberPredictions};
use mn_nn::layers::ConvFormulation;
use mn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH: usize = 64;
const ROUNDS: usize = 20;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let requests: Vec<Tensor> = (0..ROUNDS)
        .map(|_| Tensor::randn([BATCH, 3, 8, 8], 1.0, &mut rng))
        .collect();
    let total_examples = (BATCH * ROUNDS) as f64;

    println!(
        "serving {ROUNDS} batches of {BATCH} through 8 members on {} worker thread(s)\n",
        rayon::current_num_threads()
    );

    // Naive path: one-by-one members, direct conv kernels, one thread.
    let mut naive_members = bench_ensemble_members();
    for m in naive_members.iter_mut() {
        force_conv_formulation(&mut m.network, ConvFormulation::Direct);
    }
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool builds");
    let start = Instant::now();
    let naive_last = single.install(|| {
        let mut last = None;
        for x in &requests {
            last = Some(MemberPredictions::collect(&mut naive_members, x, 32));
        }
        last.expect("at least one round")
    });
    let naive_secs = start.elapsed().as_secs_f64();

    // Engine path: parallel fan-out + workspace reuse + blocked kernels.
    let mut engine =
        InferenceEngine::new(bench_ensemble_members(), 32).expect("bench ensemble builds");
    let start = Instant::now();
    let mut engine_last = None;
    for x in &requests {
        engine_last = Some(engine.predict(x));
    }
    let engine_secs = start.elapsed().as_secs_f64();
    let engine_last = engine_last.expect("at least one round");

    // Same members, same requests: predictions must agree to float noise
    // (the naive path runs a different conv formulation, so summation
    // order differs slightly).
    let mut worst = 0.0f32;
    for (a, b) in naive_last.probs().iter().zip(engine_last.probs()) {
        worst = worst.max(mn_tensor::max_abs_diff(a.data(), b.data()));
    }
    assert!(
        worst <= 1e-4,
        "engine diverged from naive path by {worst} — not an execution-strategy change!"
    );

    println!(
        "naive one-by-one: {:8.0} examples/s  ({naive_secs:.2} s total)",
        total_examples / naive_secs
    );
    println!(
        "inference engine: {:8.0} examples/s  ({engine_secs:.2} s total)",
        total_examples / engine_secs
    );
    println!(
        "\nspeedup: {:.2}x (outputs agree to {worst:.1e})",
        naive_secs / engine_secs
    );

    // Parallelism axes: plans change wall clock, never output bits.
    println!("\nexecution plans over one {BATCH}-example batch:");
    let x = &requests[0];
    let threads = rayon::current_num_threads();
    engine.set_policy(ExecPolicy::MemberParallel);
    let reference = engine.predict(x);
    for (label, policy) in [
        ("member-parallel", ExecPolicy::MemberParallel),
        (
            "data-parallel",
            ExecPolicy::DataParallel { shards: threads },
        ),
        ("auto", ExecPolicy::Auto),
    ] {
        engine.set_policy(policy);
        let _ = engine.predict(x); // warm replica lanes
        let start = Instant::now();
        let preds = engine.predict(x);
        let secs = start.elapsed().as_secs_f64();
        for (a, b) in reference.probs().iter().zip(preds.probs()) {
            assert_eq!(a.data(), b.data(), "{label} changed the predictions!");
        }
        println!(
            "  {label:>15} -> plan {:?}: {:8.0} examples/s",
            engine.plan(BATCH),
            BATCH as f64 / secs
        );
    }

    // Artifact cold start: save, boot a fresh shared plan (zero-init
    // restore — no RNG sampling), verify bitwise.
    let bytes = engine.to_artifact_bytes(&EnsembleManifest::default());
    let cold_plan = EnginePlan::from_artifact_bytes(&bytes, 32)
        .expect("artifact round trip loads")
        .into_shared();
    let warm_preds = engine.predict(x);
    let cold_preds = cold_plan.session().predict(x);
    for (a, b) in warm_preds.probs().iter().zip(cold_preds.probs()) {
        assert_eq!(a.data(), b.data(), "cold start changed the predictions!");
    }
    println!(
        "\nMNE1 artifact: {} KiB, cold-started plan is bitwise identical",
        bytes.len() / 1024
    );

    // Sharded dynamic batching: two worker shards over the one shared
    // plan (sessions hold scratch only — the weights are never cloned),
    // a bounded queue, and a burst of single-example requests.
    let server = Server::builder(cold_plan)
        .shards(2)
        .queue_capacity(256)
        .batching(BatchingConfig::default())
        .start();
    let mut pending = Vec::new();
    let mut rng = StdRng::seed_from_u64(8);
    let burst = 128;
    let start = Instant::now();
    for _ in 0..burst {
        let example = Tensor::randn([3, 8, 8], 1.0, &mut rng);
        pending.push(server.submit(&example).expect("example accepted"));
    }
    let mut worst_latency_ms = 0.0f64;
    for p in pending {
        let prediction = p.wait().expect("server answers");
        worst_latency_ms = worst_latency_ms.max(prediction.latency.as_secs_f64() * 1000.0);
    }
    let wall = start.elapsed().as_secs_f64();
    let report = server.shutdown();
    println!(
        "sharded dynamic batching: {burst} single-example requests across {} shard(s) \
         in {:.0} ms ({:.0} req/s), mean micro-batch {:.1}, worst latency {worst_latency_ms:.1} ms",
        report.per_shard.len(),
        wall * 1000.0,
        burst as f64 / wall,
        report.aggregate.mean_batch()
    );
    for (shard, s) in report.per_shard.iter().enumerate() {
        println!(
            "  shard {shard}: {} requests in {} micro-batches (mean {:.1})",
            s.requests,
            s.batches,
            s.mean_batch()
        );
    }
}

//! Serving throughput demo: batched parallel ensemble inference.
//!
//! ```text
//! cargo run --release --example serve_throughput
//! ```
//!
//! Builds an 8-member convolutional ensemble, then serves a stream of
//! request batches two ways:
//!
//! * **naive** — members run one-by-one on a single thread with the
//!   pre-optimization direct convolution kernels, reallocating every
//!   activation (the state of the repo before the performance layer);
//! * **engine** — the [`mn_ensemble::InferenceEngine`]: members fan out
//!   across rayon worker threads, each with a persistent scratch
//!   workspace, convolutions lowered onto the blocked GEMM.
//!
//! Prints examples/second for both paths and verifies the two produce
//! identical predictions — the speedup is an execution-strategy change,
//! not a model change.

use std::time::Instant;

use mn_bench::kernels::{bench_ensemble_members, force_conv_formulation};
use mn_ensemble::{InferenceEngine, MemberPredictions};
use mn_nn::layers::ConvFormulation;
use mn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH: usize = 64;
const ROUNDS: usize = 20;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let requests: Vec<Tensor> = (0..ROUNDS)
        .map(|_| Tensor::randn([BATCH, 3, 8, 8], 1.0, &mut rng))
        .collect();
    let total_examples = (BATCH * ROUNDS) as f64;

    println!(
        "serving {ROUNDS} batches of {BATCH} through 8 members on {} worker thread(s)\n",
        rayon::current_num_threads()
    );

    // Naive path: one-by-one members, direct conv kernels, one thread.
    let mut naive_members = bench_ensemble_members();
    for m in naive_members.iter_mut() {
        force_conv_formulation(&mut m.network, ConvFormulation::Direct);
    }
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool builds");
    let start = Instant::now();
    let naive_last = single.install(|| {
        let mut last = None;
        for x in &requests {
            last = Some(MemberPredictions::collect(&mut naive_members, x, 32));
        }
        last.expect("at least one round")
    });
    let naive_secs = start.elapsed().as_secs_f64();

    // Engine path: parallel fan-out + workspace reuse + blocked kernels.
    let mut engine = InferenceEngine::new(bench_ensemble_members(), 32);
    let start = Instant::now();
    let mut engine_last = None;
    for x in &requests {
        engine_last = Some(engine.predict(x));
    }
    let engine_secs = start.elapsed().as_secs_f64();
    let engine_last = engine_last.expect("at least one round");

    // Same members, same requests: predictions must agree to float noise
    // (the naive path runs a different conv formulation, so summation
    // order differs slightly).
    let mut worst = 0.0f32;
    for (a, b) in naive_last.probs().iter().zip(engine_last.probs()) {
        worst = worst.max(mn_tensor::max_abs_diff(a.data(), b.data()));
    }
    assert!(
        worst <= 1e-4,
        "engine diverged from naive path by {worst} — not an execution-strategy change!"
    );

    println!(
        "naive one-by-one: {:8.0} examples/s  ({naive_secs:.2} s total)",
        total_examples / naive_secs
    );
    println!(
        "inference engine: {:8.0} examples/s  ({engine_secs:.2} s total)",
        total_examples / engine_secs
    );
    println!(
        "\nspeedup: {:.2}x (outputs agree to {worst:.1e})",
        naive_secs / engine_secs
    );
}

//! Quickstart: train a small diverse ensemble three ways and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds five small convolutional networks of different shapes, then
//! trains the ensemble with (a) the full-data baseline, (b) the bagging
//! baseline, and (c) MotherNets — construct, train once, hatch, fine-tune —
//! and prints error under all four inference rules plus total training
//! time.

use mn_data::presets::{cifar10_sim, Scale};
use mn_data::sampler::train_val_split;
use mn_ensemble::evaluate_members;
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec};
use mn_nn::train::TrainConfig;
use mothernets::prelude::*;

fn main() {
    // A small CIFAR-10-like task (see mn-data docs for the simulation).
    let task = cifar10_sim(Scale::Small, 42);
    let input = InputSpec::new(3, 8, 8);
    let classes = task.train.num_classes();

    // Five members with diverse depth and width.
    let archs: Vec<Architecture> = vec![
        Architecture::plain(
            "narrow",
            input,
            classes,
            vec![
                ConvBlockSpec::repeated(3, 8, 1),
                ConvBlockSpec::repeated(3, 16, 1),
            ],
            vec![48],
        ),
        Architecture::plain(
            "wide",
            input,
            classes,
            vec![
                ConvBlockSpec::repeated(3, 12, 1),
                ConvBlockSpec::repeated(3, 24, 1),
            ],
            vec![48],
        ),
        Architecture::plain(
            "deep",
            input,
            classes,
            vec![
                ConvBlockSpec::repeated(3, 8, 2),
                ConvBlockSpec::repeated(3, 16, 2),
            ],
            vec![48],
        ),
        Architecture::plain(
            "kernel5",
            input,
            classes,
            vec![
                ConvBlockSpec::repeated(5, 8, 1),
                ConvBlockSpec::repeated(3, 16, 1),
            ],
            vec![48],
        ),
        Architecture::plain(
            "big-head",
            input,
            classes,
            vec![
                ConvBlockSpec::repeated(3, 8, 1),
                ConvBlockSpec::repeated(3, 16, 1),
            ],
            vec![64],
        ),
    ];

    // The MotherNet these five share.
    let mother = mothernet_of(&archs, "mothernet").expect("compatible ensemble");
    println!("MotherNet: {mother}");
    for a in &archs {
        println!("  member:  {a}");
    }

    let cfg = EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 10,
            ..TrainConfig::default()
        },
        seed: 7,
        ..Default::default()
    };
    let (_, val) = train_val_split(&task.train, cfg.val_fraction, cfg.seed);

    println!(
        "\n{:<12} {:>6} {:>6} {:>6} {:>7} {:>9}",
        "strategy", "EA%", "Vote%", "SL%", "Oracle%", "time (s)"
    );
    for strategy in [
        Strategy::FullData,
        Strategy::Bagging,
        Strategy::mothernets(),
    ] {
        let mut trained =
            train_ensemble(&archs, &task.train, &strategy, &cfg).expect("training succeeds");
        let eval = evaluate_members(
            &mut trained.members,
            task.test.images(),
            task.test.labels(),
            val.images(),
            val.labels(),
            64,
        );
        println!(
            "{:<12} {:>6.1} {:>6.1} {:>6.1} {:>7.1} {:>9.2}",
            strategy.label(),
            eval.ea_error * 100.0,
            eval.vote_error * 100.0,
            eval.sl_error * 100.0,
            eval.oracle_error * 100.0,
            trained.total_wall_secs(),
        );
    }
    println!("\n(Small scale — run the `reproduce` binary in mn-bench for the paper figures.)");
}

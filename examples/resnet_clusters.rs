//! τ-clustering of a size-diverse ResNet ensemble (paper §2.3, Figure 9).
//!
//! ```text
//! cargo run --release --example resnet_clusters
//! ```
//!
//! Builds the 25-network ResNet ladder (5 depths × 5 width variants),
//! shows how the number of MotherNet clusters changes with τ, then trains
//! a small clustered ensemble end to end and grows it incrementally.

use mn_data::presets::{cifar10_sim, Scale};
use mn_nn::arch::{Architecture, ResBlockSpec};
use mn_nn::train::TrainConfig;
use mothernets::cluster::cluster_architectures;
use mothernets::prelude::*;

fn resnet_ladder(num_classes: usize) -> Vec<Architecture> {
    // Mirrors mn-bench's zoo: depths 18/34/50/101/152 scaled down.
    let ladder: [(&str, [usize; 3]); 5] = [
        ("R18", [2, 2, 2]),
        ("R34", [3, 4, 3]),
        ("R50", [4, 6, 4]),
        ("R101", [6, 10, 6]),
        ("R152", [8, 12, 8]),
    ];
    let input = mn_nn::arch::InputSpec::new(3, 8, 8);
    let mut out = Vec::new();
    for (name, units) in ladder {
        for (suffix, filters) in [
            ("", [8usize, 16, 32]),
            ("-2xE", [16, 16, 64]),
            ("-2xO", [8, 32, 32]),
            ("+2E", [10, 16, 34]),
            ("+2O", [8, 18, 32]),
        ] {
            out.push(Architecture::residual(
                format!("{name}{suffix}"),
                input,
                num_classes,
                units
                    .iter()
                    .zip(filters.iter())
                    .map(|(&u, &f)| ResBlockSpec::new(u, f, 3))
                    .collect(),
            ));
        }
    }
    out
}

fn main() {
    let ensemble = resnet_ladder(10);
    println!(
        "ResNet ensemble: {} networks, {} to {} parameters\n",
        ensemble.len(),
        ensemble.iter().map(|a| a.param_count()).min().unwrap(),
        ensemble.iter().map(|a| a.param_count()).max().unwrap()
    );

    println!("{:<6} {:>9}  cluster sizes", "tau", "clusters");
    for tau in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let clustering = cluster_architectures(&ensemble, tau).expect("clusterable");
        let sizes: Vec<usize> = clustering
            .clusters
            .iter()
            .map(|c| c.member_indices.len())
            .collect();
        println!("{tau:<6} {:>9}  {sizes:?}", clustering.len());
    }

    // Train a clustered sub-ensemble end to end at tiny scale.
    println!("\nTraining the two smallest depth groups with MotherNets (tiny scale)...");
    let task = cifar10_sim(Scale::Tiny, 3);
    let small: Vec<Architecture> = ensemble[..10].to_vec(); // R18 + R34 groups
    let strategy = MotherNetsStrategy {
        tau: 0.5,
        ..Default::default()
    };
    let cfg = EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 2,
            ..TrainConfig::default()
        },
        seed: 11,
        ..Default::default()
    };
    let mut trained = train_ensemble(&small, &task.train, &Strategy::MotherNets(strategy), &cfg)
        .expect("training succeeds");
    let clustering = trained.clustering.clone().expect("clustered");
    println!(
        "-> {} MotherNet cluster(s) for 10 networks",
        clustering.len()
    );
    for (g, c) in clustering.clusters.iter().enumerate() {
        let names: Vec<&str> = c
            .member_indices
            .iter()
            .map(|&i| small[i].name.as_str())
            .collect();
        println!(
            "   cluster {g}: mothernet {} params, members {names:?}",
            c.mothernet.param_count()
        );
    }

    // Incremental growth: hatch an 11th member without retraining anything.
    let extra = ensemble[10].clone(); // the R50 base — may or may not fit a stored mother
    print!(
        "\nHatching one more member ({}) from a stored MotherNet... ",
        extra.name
    );
    match trained.hatch_additional(&extra, &task.train, &strategy, &cfg) {
        Ok(()) => println!(
            "ok — ensemble now has {} members; the new one cost {:.2}s",
            trained.members.len(),
            trained.member_records.last().expect("record").wall_secs
        ),
        Err(e) => println!("not hatchable from stored MotherNets ({e})"),
    }
}

//! Incremental ensemble growth: "train a couple, get many for cheap".
//!
//! ```text
//! cargo run --release --example incremental_growth
//! ```
//!
//! The paper's headline property (§1) is that once the MotherNet is
//! trained, *every additional network* costs only a hatch plus a short
//! fine-tune. This example trains a MotherNet once, then grows the
//! ensemble one member at a time, printing the marginal cost of each new
//! member and the ensemble error as it improves.

use mn_data::presets::{cifar10_sim, Scale};
use mn_data::sampler::train_val_split;
use mn_ensemble::evaluate_members;
use mn_nn::arch::{Architecture, ConvBlockSpec, ConvLayerSpec, InputSpec};
use mn_nn::train::TrainConfig;
use mothernets::prelude::*;

/// Single-layer variations of a base network, in the style of the paper's
/// 100-variant V16 ensemble.
fn variants(base: &Architecture, n: usize) -> Vec<Architecture> {
    let mut out = Vec::new();
    let mut i = 0;
    while out.len() < n {
        let mut arch = base.clone();
        if let mn_nn::arch::Body::Plain { blocks, .. } = &mut arch.body {
            let bi = i % blocks.len();
            let li = (i / blocks.len()) % blocks[bi].layers.len();
            match i % 3 {
                0 => blocks[bi].layers[li].filters += 4 + 4 * (i / 9),
                1 => blocks[bi].layers[li].filter_size = 5,
                _ => {
                    blocks[bi].layers[li].filters += 4 + 4 * (i / 9);
                    blocks[bi].layers[li].filter_size = 5;
                }
            }
        }
        arch.name = format!("variant-{}", out.len() + 1);
        if !out.contains(&arch) && arch != *base {
            out.push(arch);
        }
        i += 1;
    }
    out
}

fn main() {
    let task = cifar10_sim(Scale::Tiny, 21);
    let classes = task.train.num_classes();
    let base = Architecture::plain(
        "base",
        InputSpec::new(3, 8, 8),
        classes,
        vec![
            ConvBlockSpec::new(vec![ConvLayerSpec::new(3, 8), ConvLayerSpec::new(3, 8)]),
            ConvBlockSpec::new(vec![ConvLayerSpec::new(3, 16), ConvLayerSpec::new(3, 16)]),
        ],
        vec![64],
    );
    let members = variants(&base, 8);

    let strategy = MotherNetsStrategy::default();
    let cfg = EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 6,
            ..TrainConfig::default()
        },
        seed: 5,
        ..Default::default()
    };

    // Phase 1: train the MotherNet by training a 1-member ensemble whose
    // sole member is the base network. The stored MotherNet is then the
    // structural core every variant grows from; starting from a variant
    // instead would store a MotherNet too wide to hatch its siblings.
    println!("training the MotherNet once (full data)...");
    let mut trained = train_ensemble(
        std::slice::from_ref(&base),
        &task.train,
        &Strategy::MotherNets(strategy),
        &cfg,
    )
    .expect("training succeeds");
    let mother_secs: f64 = trained.mother_records.iter().map(|r| r.wall_secs).sum();
    println!("MotherNet cost: {mother_secs:.2}s\n");
    let growth_start = std::time::Instant::now();

    let (_, val) = train_val_split(&task.train, cfg.val_fraction, cfg.seed);
    println!(
        "{:<4} {:>14} {:>12} {:>10}",
        "k", "marginal (s)", "total (s)", "EA err %"
    );
    for arch in &members {
        trained
            .hatch_additional(arch, &task.train, &strategy, &cfg)
            .expect("variants share the MotherNet");
        let marginal = trained.member_records.last().expect("record").wall_secs;
        let eval = evaluate_members(
            &mut trained.members,
            task.test.images(),
            task.test.labels(),
            val.images(),
            val.labels(),
            64,
        );
        println!(
            "{:<4} {:>14.2} {:>12.2} {:>10.1}",
            trained.members.len(),
            marginal,
            trained.total_wall_secs(),
            eval.ea_error * 100.0
        );
    }
    println!(
        "\ngrowth wall clock: {:.2}s elapsed vs {:.2}s sequential-equivalent training time",
        growth_start.elapsed().as_secs_f64(),
        trained.total_wall_secs()
    );
    println!("Each extra member costs a hatch + short fine-tune — not a full training run.");
}

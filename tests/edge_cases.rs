//! Edge cases and failure injection across the public API: boundary sizes,
//! degenerate ensembles, and corrupted inputs must fail loudly (or work)
//! rather than corrupt results silently.

use mn_data::presets::{cifar10_sim, Scale};
use mn_data::synthetic::{generate, SyntheticSpec};
use mn_ensemble::engine::InferenceEngine;
use mn_ensemble::{EnsembleMember, MemberPredictions};
use mn_morph::{morph_to, MorphError};
use mn_nn::arch::{Architecture, ConvBlockSpec, ConvLayerSpec, InputSpec, ResBlockSpec};
use mn_nn::io::{load_weights, save_weights};
use mn_nn::train::TrainConfig;
use mn_nn::{Mode, Network};
use mn_tensor::Tensor;
use mothernets::prelude::*;

#[test]
fn single_member_ensemble_works_end_to_end() {
    // The degenerate ensemble of one network: MotherNet == member.
    let task = cifar10_sim(Scale::Tiny, 31);
    let arch = Architecture::mlp("only", InputSpec::new(3, 8, 8), 10, vec![12]);
    let cfg = EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 2,
            ..TrainConfig::default()
        },
        ..Default::default()
    };
    let trained = train_ensemble(
        std::slice::from_ref(&arch),
        &task.train,
        &Strategy::mothernets(),
        &cfg,
    )
    .unwrap();
    assert_eq!(trained.members.len(), 1);
    let clustering = trained.clustering.unwrap();
    assert_eq!(clustering.len(), 1);
    assert_eq!(
        clustering.clusters[0].mothernet.param_count(),
        arch.param_count()
    );
}

#[test]
fn one_by_one_convolutions_throughout() {
    // A network made entirely of 1x1 convolutions is legal and morphable.
    let input = InputSpec::new(3, 8, 8);
    let small = Architecture::plain(
        "one",
        input,
        5,
        vec![ConvBlockSpec::new(vec![ConvLayerSpec::new(1, 4)])],
        vec![8],
    );
    let big = Architecture::plain(
        "three",
        input,
        5,
        vec![ConvBlockSpec::new(vec![
            ConvLayerSpec::new(3, 8),
            ConvLayerSpec::new(3, 8),
        ])],
        vec![8],
    );
    let mut src = Network::seeded(&small, 32);
    let mut hatched = morph_to(&src, &big).unwrap();
    let x = Tensor::randn([2, 3, 8, 8], 1.0, &mut rand::thread_rng());
    let a = src.forward(&x, Mode::Eval);
    let b = hatched.forward(&x, Mode::Eval);
    assert!(mn_tensor::max_abs_diff(a.data(), b.data()) <= mn_tensor::PRESERVATION_TOLERANCE);
}

#[test]
fn minimal_spatial_extent_survives_pooling() {
    // 4x4 input with two pooling stages bottoms out at 1x1 — still legal.
    let arch = Architecture::plain(
        "tiny-spatial",
        InputSpec::new(1, 4, 4),
        3,
        vec![
            ConvBlockSpec::repeated(3, 2, 1),
            ConvBlockSpec::repeated(3, 4, 1),
        ],
        vec![6],
    );
    arch.validate().unwrap();
    let mut net = Network::seeded(&arch, 33);
    let y = net.forward(&Tensor::zeros([2, 1, 4, 4]), Mode::Eval);
    assert_eq!(y.shape().dims(), &[2, 3]);
    // One more pooling stage would underflow and must be rejected.
    let too_deep = Architecture::plain(
        "too-deep",
        InputSpec::new(1, 4, 4),
        3,
        vec![
            ConvBlockSpec::repeated(3, 2, 1),
            ConvBlockSpec::repeated(3, 2, 1),
            ConvBlockSpec::repeated(3, 2, 1),
        ],
        vec![],
    );
    assert!(too_deep.validate().is_err());
}

#[test]
fn residual_and_plain_never_cross_morph() {
    let input = InputSpec::new(3, 8, 8);
    let plain = Architecture::plain(
        "p",
        input,
        5,
        vec![ConvBlockSpec::repeated(3, 4, 1)],
        vec![8],
    );
    let residual = Architecture::residual("r", input, 5, vec![ResBlockSpec::new(1, 4, 3)]);
    let p_net = Network::seeded(&plain, 34);
    let r_net = Network::seeded(&residual, 35);
    assert!(matches!(
        morph_to(&p_net, &residual),
        Err(MorphError::NotExpandable { .. })
    ));
    assert!(matches!(
        morph_to(&r_net, &plain),
        Err(MorphError::NotExpandable { .. })
    ));
}

#[test]
fn corrupted_checkpoint_cannot_poison_a_network() {
    let arch = Architecture::mlp("m", InputSpec::new(3, 8, 8), 5, vec![8]);
    let mut net = Network::seeded(&arch, 36);
    let mut blob = save_weights(&net);
    // Flip the tensor count field.
    blob[4] = blob[4].wrapping_add(1);
    assert!(load_weights(&mut net, &blob).is_err());
    // The network must still run (state intact or partially written but
    // structurally sound).
    let y = net.forward(&Tensor::zeros([1, 3, 8, 8]), Mode::Eval);
    assert!(y.data().iter().all(|v| v.is_finite()));
}

#[test]
fn two_class_two_example_task_trains() {
    // Smallest legal task: 2 classes, handful of examples, batch norm
    // still satisfied (batch of >= 2).
    let task = generate(&SyntheticSpec {
        num_classes: 2,
        train_per_class: 4,
        test_per_class: 2,
        channels: 1,
        height: 4,
        width: 4,
        modes_per_class: 1,
        ..SyntheticSpec::default()
    });
    let arch = Architecture::plain(
        "tiny",
        InputSpec::new(1, 4, 4),
        2,
        vec![ConvBlockSpec::repeated(3, 2, 1)],
        vec![4],
    );
    let cfg = EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        },
        val_fraction: 0.25,
        ..Default::default()
    };
    let trained = train_ensemble(&[arch], &task.train, &Strategy::FullData, &cfg).unwrap();
    assert_eq!(trained.members.len(), 1);
}

#[test]
fn snapshot_on_single_architecture() {
    let task = cifar10_sim(Scale::Tiny, 37);
    let arch = Architecture::mlp("solo", InputSpec::new(3, 8, 8), 10, vec![16]);
    let cfg = EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 4,
            ..TrainConfig::default()
        },
        ..Default::default()
    };
    let strategy = Strategy::Snapshot(SnapshotStrategy {
        cycle_epochs: 2,
        min_lr_factor: 0.1,
    });
    let trained = train_ensemble(&[arch], &task.train, &strategy, &cfg).unwrap();
    assert_eq!(trained.members.len(), 1);
    assert_eq!(trained.member_records[0].epochs, 2);
}

fn small_conv_members(n: u64) -> Vec<EnsembleMember> {
    let arch = Architecture::plain(
        "edge",
        InputSpec::new(3, 8, 8),
        4,
        vec![ConvBlockSpec::repeated(3, 4, 1)],
        vec![8],
    );
    (0..n)
        .map(|s| EnsembleMember::new(format!("edge{s}"), Network::seeded(&arch, 50 + s)))
        .collect()
}

#[test]
fn member_predictions_prefix_invariants() {
    let probs: Vec<Tensor> = (0..4)
        .map(|m| Tensor::filled([3, 2], 0.25 * (m + 1) as f32))
        .collect();
    let preds = MemberPredictions::from_probs(probs);
    assert_eq!(preds.num_members(), 4);
    assert_eq!(preds.num_examples(), 3);
    assert_eq!(preds.num_classes(), 2);
    // prefix(k) keeps exactly the first k members, in order, unchanged.
    for k in 1..=4 {
        let p = preds.prefix(k);
        assert_eq!(p.num_members(), k);
        assert_eq!(p.num_examples(), 3);
        assert_eq!(p.num_classes(), 2);
        for (i, t) in p.probs().iter().enumerate() {
            assert_eq!(t.data(), preds.probs()[i].data());
        }
    }
    // The full prefix is the identity.
    let full = preds.prefix(4);
    assert_eq!(full.num_members(), preds.num_members());
}

#[test]
#[should_panic(expected = "out of range")]
fn member_predictions_prefix_rejects_zero() {
    MemberPredictions::from_probs(vec![Tensor::filled([1, 2], 0.5)]).prefix(0);
}

#[test]
#[should_panic(expected = "out of range")]
fn member_predictions_prefix_rejects_overrun() {
    MemberPredictions::from_probs(vec![Tensor::filled([1, 2], 0.5)]).prefix(2);
}

#[test]
#[should_panic(expected = "shapes disagree")]
fn member_predictions_from_probs_rejects_ragged_shapes() {
    MemberPredictions::from_probs(vec![Tensor::zeros([2, 3]), Tensor::zeros([2, 4])]);
}

#[test]
fn empty_batch_through_engine() {
    // A serving engine sees empty request batches (e.g. a drained queue);
    // they must flow through cleanly rather than panic.
    let mut engine = InferenceEngine::new(small_conv_members(3), 8).unwrap();
    let empty = Tensor::zeros([0, 3, 8, 8]);
    let preds = engine.predict(&empty);
    assert_eq!(preds.num_members(), 3);
    assert_eq!(preds.num_examples(), 0);
    assert_eq!(preds.num_classes(), 4);
    assert!(engine.predict_labels(&empty).is_empty());
    assert!(engine.predict_vote_labels(&empty).is_empty());
    let avg = engine.predict_average(&empty);
    assert_eq!(avg.shape().dims(), &[0, 4]);
}

#[test]
fn single_example_through_engine_matches_batched() {
    // One-example requests (interactive traffic) must agree exactly with
    // the same example served inside a larger batch.
    let x = Tensor::randn([5, 3, 8, 8], 1.0, &mut rand::thread_rng());
    let mut engine = InferenceEngine::new(small_conv_members(2), 8).unwrap();
    let batched = engine.predict(&x);
    let first = mn_nn::metrics::gather_examples(&x, &[0]);
    let single = engine.predict(&first);
    assert_eq!(single.num_examples(), 1);
    for m in 0..2 {
        let batch_row = &batched.probs()[m].data()[..batched.num_classes()];
        assert_eq!(
            single.probs()[m].data(),
            batch_row,
            "member {m}: single-example prediction diverged from batched"
        );
    }
}

#[test]
fn hatch_additional_rejects_incompatible_member() {
    let task = cifar10_sim(Scale::Tiny, 38);
    let input = InputSpec::new(3, 8, 8);
    let base = Architecture::mlp("base", input, 10, vec![16]);
    let strategy = MotherNetsStrategy::default();
    let cfg = EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 1,
            ..TrainConfig::default()
        },
        ..Default::default()
    };
    let mut trained =
        train_ensemble(&[base], &task.train, &Strategy::MotherNets(strategy), &cfg).unwrap();
    // Smaller than the MotherNet: not hatchable.
    let smaller = Architecture::mlp("smaller", input, 10, vec![8]);
    assert!(trained
        .hatch_additional(&smaller, &task.train, &strategy, &cfg)
        .is_err());
    // Different family: not hatchable.
    let conv = Architecture::plain(
        "conv",
        input,
        10,
        vec![ConvBlockSpec::repeated(3, 4, 1)],
        vec![8],
    );
    assert!(trained
        .hatch_additional(&conv, &task.train, &strategy, &cfg)
        .is_err());
    // Members unchanged after failed growth.
    assert_eq!(trained.members.len(), 1);
}

//! Trunk-shared execution is an execution strategy, not a different
//! model: for ensembles whose members share a hatched prefix, evaluating
//! the trunk once and fanning only the divergent tails must be **bitwise
//! identical** to flat per-member evaluation — across trunk depths
//! (including zero shared prefix and fully-shared topologies), member
//! counts, shard counts, and batch shapes.

use mn_ensemble::engine::{EnginePlan, ExecPolicy, Plan};
use mn_ensemble::EnsembleMember;
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec, ResBlockSpec};
use mn_nn::Network;
use mn_tensor::Tensor;
use mothernets::hatch::hatch_with_report;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn input() -> InputSpec {
    InputSpec::new(3, 8, 8)
}

fn arch(family: u8) -> Architecture {
    match family % 3 {
        0 => Architecture::mlp("m", input(), 5, vec![12, 8]),
        1 => Architecture::plain(
            "p",
            input(),
            5,
            vec![ConvBlockSpec::repeated(3, 4, 2)],
            vec![8],
        ),
        _ => Architecture::residual("r", input(), 5, vec![ResBlockSpec::new(1, 4, 3)]),
    }
}

/// A synthetic hatch: clone `base` and perturb every state tensor from
/// node `cut` onward with a member-specific seed. The members' shared
/// trunk is exactly the nodes before `cut` (plus any stateless or
/// zero-initialized state right after it, which the value-level detector
/// rightly counts as shared too). Perturbation is multiplicative so
/// BatchNorm running variances stay positive.
fn diverge_from(base: &Network, cut: usize, seed: u64) -> Network {
    let mut net = base.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    for node in net.nodes_mut().iter_mut().skip(cut) {
        for t in node.state_mut() {
            for v in t.data_mut() {
                *v *= 1.0 + rng.gen_range(-0.2..0.2f32);
            }
        }
    }
    net
}

fn bits(probs: &Tensor) -> Vec<u32> {
    probs.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core property: trunk-shared output equals member-parallel
    /// output bit for bit, wherever the members diverge — at node 0
    /// (zero shared prefix), past the last node (fully identical
    /// members, empty tails), or anywhere in between.
    #[test]
    fn trunk_shared_is_bitwise_identical_to_flat(
        family in 0u8..3,
        cut_pick in 0usize..64,
        num_members in 2usize..5,
        shards in 1usize..6,
        n in 1usize..14,
        batch_size in 1usize..6,
    ) {
        let arch = arch(family);
        let base = Network::seeded(&arch, 7);
        let cut = cut_pick % (base.nodes().len() + 1);
        let members: Vec<EnsembleMember> = (0..num_members)
            .map(|i| {
                let net = diverge_from(&base, cut, 100 + i as u64);
                EnsembleMember::new(format!("m{i}"), net)
            })
            .collect();
        let plan = EnginePlan::new(members, batch_size).unwrap().into_shared();
        let x = Tensor::randn([n, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(9));

        let mut flat = plan.session();
        flat.set_policy(ExecPolicy::MemberParallel);
        let reference = flat.predict(&x);

        let mut trunked = plan.session();
        trunked.set_policy(ExecPolicy::TrunkShared { shards });
        // Run twice so the second pass hits warm, reused lane scratch.
        let _ = trunked.predict(&x);
        let got = trunked.predict(&x);
        for (m, (a, b)) in reference.probs().iter().zip(got.probs()).enumerate() {
            prop_assert_eq!(
                bits(a),
                bits(b),
                "member {} diverged (cut {}, {} shards)",
                m,
                cut,
                shards
            );
        }

        // Auto must agree too, whichever plan it picks for this ensemble.
        let mut auto = plan.session();
        auto.set_policy(ExecPolicy::Auto);
        let auto_got = auto.predict(&x);
        for (a, b) in reference.probs().iter().zip(auto_got.probs()) {
            prop_assert_eq!(bits(a), bits(b));
        }
    }
}

#[test]
fn genuinely_hatched_ensemble_shares_its_mothernet_trunk() {
    // The real pipeline, not a synthetic clone: hatch members with
    // progressively wider dense tails from one MotherNet. The conv trunk
    // transfers bit-for-bit, so the engine must detect and share it.
    let mother_arch = Architecture::plain(
        "mother",
        input(),
        5,
        vec![ConvBlockSpec::repeated(3, 4, 2)],
        vec![8],
    );
    let mother = Network::seeded(&mother_arch, 21);
    let members: Vec<EnsembleMember> = [8usize, 12, 16]
        .iter()
        .enumerate()
        .map(|(i, &width)| {
            let target = Architecture::plain(
                format!("member{i}"),
                input(),
                5,
                vec![ConvBlockSpec::repeated(3, 4, 2)],
                vec![width],
            );
            let (net, report) =
                hatch_with_report(&mother, &target, &mn_morph::MorphOptions::exact()).unwrap();
            assert!(
                report.shared_prefix_nodes > 0,
                "hatching must preserve a shared prefix"
            );
            EnsembleMember::new(format!("member{i}"), net)
        })
        .collect();

    let plan = EnginePlan::new(members, 4).unwrap().into_shared();
    assert!(plan.shares_trunk(), "hatched conv trunk must be detected");
    // The whole conv body (conv/bn/relu ×2, maxpool, flatten) is shared;
    // only the dense tail diverges.
    assert!(
        plan.trunk_len() >= 5,
        "trunk too short: {}",
        plan.trunk_len()
    );
    assert!(matches!(
        plan.resolve(16, ExecPolicy::Auto),
        Plan::TrunkShared { .. }
    ));

    let x = Tensor::randn([11, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(22));
    let mut flat = plan.session();
    flat.set_policy(ExecPolicy::MemberParallel);
    let reference = flat.predict(&x);
    for shards in [1usize, 2, 4] {
        let mut trunked = plan.session();
        trunked.set_policy(ExecPolicy::TrunkShared { shards });
        let got = trunked.predict(&x);
        for (m, (a, b)) in reference.probs().iter().zip(got.probs()).enumerate() {
            assert_eq!(
                bits(a),
                bits(b),
                "hatched member {m} diverged under {shards}-shard trunk sharing"
            );
        }
    }
}

//! Chaos lockdown for the self-healing serve path: a randomized fault
//! schedule (worker panics and stalls at named failpoints) runs against
//! concurrent clients, and the server must hold four invariants:
//!
//! 1. **No client hangs** — every wait is deadline-bounded and returns.
//! 2. **Every request resolves to a typed outcome** — `Ok(Prediction)`
//!    or a typed [`ServeError`]; never a panic across the API boundary.
//! 3. **Non-degraded answers are bitwise identical** to a direct
//!    [`EngineSession`] evaluation of the same example — faults may cost
//!    latency or availability, never silent accuracy.
//! 4. **Per-shard stats sum consistently** — the aggregate equals the
//!    per-shard sums, and delivered `Ok` answers equal the requests the
//!    shards claim to have served.

use std::sync::Arc;
use std::time::Duration;

use mn_ensemble::engine::EnginePlan;
use mn_ensemble::faults::{self, FaultAction};
use mn_ensemble::serve::{BatchingConfig, ServeError, Server};
use mn_ensemble::EnsembleMember;
use mn_nn::arch::{Architecture, InputSpec};
use mn_nn::Network;
use mn_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small mixed ensemble: cheap enough for many chaos cases, real
/// enough to exercise the engine's staging and combine paths.
fn small_members(master_seed: u64) -> Vec<EnsembleMember> {
    let input = InputSpec::new(2, 6, 6);
    (0..3u64)
        .map(|i| {
            let arch = Architecture::mlp(format!("m{i}"), input, 4, vec![8 + 2 * i as usize]);
            EnsembleMember::new(format!("m{i}"), Network::seeded(&arch, master_seed + i))
        })
        .collect()
}

/// One entry of the randomized fault schedule.
#[derive(Debug, Clone, Copy)]
struct ScheduledFault {
    site: usize,   // index into SITES
    action: usize, // 0 = panic, 1 = stall
    times: u64,
    stall_ms: u64,
}

const SITES: [&str; 3] = [
    faults::sites::QUEUE_POP,
    faults::sites::WORKER_EVAL,
    faults::sites::SHUTDOWN_DRAIN,
];

fn fault_strategy() -> impl Strategy<Value = ScheduledFault> {
    (0usize..SITES.len(), 0usize..2, 1u64..3, 5u64..30).prop_map(
        |(site, action, times, stall_ms)| ScheduledFault {
            site,
            action,
            times,
            stall_ms,
        },
    )
}

#[derive(Debug)]
enum Outcome {
    Answered {
        example: Vec<f32>,
        probs: Vec<f32>,
        degraded: bool,
    },
    Shed(ServeError),
    RejectedAtSubmit,
}

proptest! {
    // Each case spins up a real server, injects faults with sleeps and
    // restart backoff, and joins client threads: keep the case count low
    // enough that the whole suite stays in CI-scale seconds.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn randomized_faults_never_break_serving_invariants(
        schedule in proptest::collection::vec(fault_strategy(), 1..4),
        shards in 1usize..4,
        clients in 2u64..5,
        per_client in 3usize..7,
        seed in 0u64..1_000_000,
    ) {
        let plan = EnginePlan::new(small_members(seed % 97), 2).unwrap().into_shared();

        // Arm the schedule. The scope's global lock also serializes this
        // suite against every other fault-driven test in the workspace;
        // panic counts stay under the restart budget so availability
        // survives the whole schedule.
        let scope = faults::scope();
        let mut injected_panics = 0u64;
        for f in &schedule {
            let action = if f.action == 0 {
                injected_panics += f.times;
                FaultAction::Panic
            } else {
                FaultAction::Stall(Duration::from_millis(f.stall_ms))
            };
            // Later schedule entries for the same site overwrite earlier
            // ones — fine: the schedule is still a random single action
            // per site, and `fired` tallies whatever actually triggered.
            scope.enable_times(SITES[f.site], action, f.times);
        }

        let server = Server::builder(Arc::clone(&plan))
            .shards(shards)
            .queue_capacity(256)
            .batching(BatchingConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(2),
            })
            .restart_budget(16)
            .restart_backoff(Duration::from_millis(1))
            .start();

        // Concurrent clients, every wait bounded by a generous deadline:
        // if invariant 1 fails, the deadline converts the hang into a
        // typed error and the assertions below report it.
        let outcomes: Vec<Outcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let client = server.client();
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed ^ (c + 1));
                        let mut out = Vec::new();
                        for _ in 0..per_client {
                            let x = Tensor::randn([2, 6, 6], 1.0, &mut rng);
                            let pending = match client
                                .submit_with_deadline(&x, Duration::from_secs(10))
                            {
                                Ok(p) => p,
                                Err(_) => {
                                    out.push(Outcome::RejectedAtSubmit);
                                    continue;
                                }
                            };
                            match pending.wait() {
                                Ok(p) => out.push(Outcome::Answered {
                                    example: x.into_vec(),
                                    probs: p.probs,
                                    degraded: p.degraded,
                                }),
                                Err(e) => out.push(Outcome::Shed(e)),
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });

        let report = server.shutdown();
        drop(scope);

        // Invariant 2: every submitted request produced exactly one typed
        // outcome, and the errors are from the expected fault vocabulary.
        prop_assert_eq!(outcomes.len(), (clients as usize) * per_client);
        for o in &outcomes {
            if let Outcome::Shed(e) = o {
                prop_assert!(
                    matches!(
                        e,
                        ServeError::WorkerGone
                            | ServeError::Closed
                            | ServeError::DeadlineExceeded
                            | ServeError::Overloaded { .. }
                    ),
                    "unexpected typed outcome: {:?}", e
                );
            }
        }

        // Invariant 3: non-degraded answers are bitwise identical to a
        // direct session evaluation of the same example.
        let mut direct = plan.session();
        for o in &outcomes {
            if let Outcome::Answered { example, probs, degraded } = o {
                if *degraded {
                    continue;
                }
                let x = Tensor::from_vec([1, 2, 6, 6], example.clone());
                let want = direct.predict_average(&x);
                let got_bits: Vec<u32> = probs.iter().map(|v| v.to_bits()).collect();
                let want_bits: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(got_bits, want_bits, "a fault changed an answer");
            }
        }

        // Invariant 4: the aggregate is exactly the per-shard sums, and
        // the shards' claimed service count matches delivered answers.
        let answered = outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Answered { .. }))
            .count() as u64;
        prop_assert_eq!(report.aggregate.requests, answered);
        prop_assert_eq!(
            report.aggregate.requests,
            report.per_shard.iter().map(|s| s.requests).sum::<u64>()
        );
        prop_assert_eq!(
            report.aggregate.batches,
            report.per_shard.iter().map(|s| s.batches).sum::<u64>()
        );
        prop_assert_eq!(
            report.aggregate.deadline_expired,
            report
                .per_shard
                .iter()
                .map(|s| s.deadline_expired)
                .sum::<u64>()
        );
        prop_assert_eq!(
            report.aggregate.degraded,
            report.per_shard.iter().map(|s| s.degraded).sum::<u64>()
        );

        // Supervision accounting: the server records every injected panic
        // that fired, and never more restarts than panics.
        prop_assert!(report.worker_panics <= injected_panics);
        prop_assert!(report.restarts <= report.worker_panics);
    }
}

/// Directed worst case outside proptest: a panic storm at the queue-pop
/// site with a single shard, where every pop for a while kills the only
/// worker. The supervisor must burn restarts, keep the queue unpoisoned,
/// and either serve or shed — never hang.
#[test]
fn panic_storm_on_single_shard_resolves_every_request() {
    let plan = EnginePlan::new(small_members(5), 2).unwrap().into_shared();
    let scope = faults::scope();
    scope.enable_times(faults::sites::QUEUE_POP, FaultAction::Panic, 3);

    let server = Server::builder(Arc::clone(&plan))
        .shards(1)
        .queue_capacity(64)
        .batching(BatchingConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
        })
        .restart_budget(8)
        .restart_backoff(Duration::from_millis(1))
        .start();

    let mut rng = StdRng::seed_from_u64(9);
    let mut answered = 0u64;
    for _ in 0..12 {
        let x = Tensor::randn([2, 6, 6], 1.0, &mut rng);
        let pending = server
            .submit_with_deadline(&x, Duration::from_secs(10))
            .unwrap();
        match pending.wait() {
            Ok(p) => {
                assert_eq!(p.probs.len(), 4);
                answered += 1;
            }
            Err(ServeError::WorkerGone) => {} // its pop was the panic
            Err(e) => panic!("unexpected outcome during panic storm: {e}"),
        }
    }
    let report = server.shutdown();
    drop(scope);
    assert_eq!(report.worker_panics, 3, "all three injected panics fired");
    assert_eq!(report.restarts, 3, "the supervisor replaced each casualty");
    assert_eq!(report.aggregate.requests, answered);
    assert!(
        answered >= 9,
        "only the three poisoned pops may be lost, got {answered}/12"
    );
}

//! Checkpoint-format lockdown: `MNW1` weight blobs, network checkpoints,
//! and `MNE1` ensemble artifacts must round-trip bitwise across
//! randomized architectures — and every corruption mode must map to its
//! distinct typed error rather than a panic or a silently wrong network.

use mn_ensemble::{artifact, ArtifactError, EnsembleManifest, EnsembleMember};
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec, ResBlockSpec};
use mn_nn::io::{crc32, load_network, load_weights, save_network, save_weights, WeightsError};
use mn_nn::{Mode, Network};
use mn_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A randomized architecture from any of the three families.
fn arch_from(family: usize, width: usize, depth: usize) -> Architecture {
    let input = InputSpec::new(2, 8, 8);
    let width = 2 + width; // at least 2 units / filters
    let depth = 1 + depth; // at least one layer / block
    match family % 3 {
        0 => Architecture::mlp("m", input, 4, vec![width; depth]),
        1 => Architecture::plain(
            "p",
            input,
            4,
            vec![ConvBlockSpec::repeated(3, width, depth)],
            vec![width * 2],
        ),
        _ => Architecture::residual("r", input, 4, vec![ResBlockSpec::new(depth, width, 3)]),
    }
}

/// Recomputes a blob's trailing CRC-32 after a deliberate payload edit,
/// so corruption tests can reach the structural error *behind* the
/// checksum (which otherwise fires first on any byte change).
fn reseal(bytes: &mut [u8]) {
    let payload_len = bytes.len() - 4;
    let fixed = crc32(&bytes[..payload_len]);
    bytes[payload_len..].copy_from_slice(&fixed.to_le_bytes());
}

/// A network with perturbed batch-norm running statistics, so checkpoints
/// cover non-trainable state too.
fn perturbed_network(arch: &Architecture, seed: u64) -> Network {
    let mut net = Network::seeded(arch, seed);
    let x = Tensor::randn([3, 2, 8, 8], 1.0, &mut StdRng::seed_from_u64(seed ^ 0xABCD));
    net.forward(&x, Mode::Train);
    net.clear_caches();
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MNW1: save → load restores every persistent tensor bitwise.
    #[test]
    fn mnw1_round_trip_is_bitwise(
        family in 0usize..3,
        width in 0usize..6,
        depth in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let arch = arch_from(family, width, depth);
        let original = perturbed_network(&arch, seed);
        let blob = save_weights(&original);
        let mut restored = Network::seeded(&arch, seed.wrapping_add(1));
        load_weights(&mut restored, &blob).unwrap();
        // Bitwise: re-serializing the restored network gives the same blob.
        prop_assert_eq!(save_weights(&restored), blob);
    }

    /// Network checkpoints rebuild from bytes alone, bitwise.
    #[test]
    fn network_checkpoint_round_trip_is_bitwise(
        family in 0usize..3,
        width in 0usize..6,
        depth in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let arch = arch_from(family, width, depth);
        let original = perturbed_network(&arch, seed);
        let bytes = save_network(&original);
        let rebuilt = load_network(&bytes).unwrap();
        prop_assert_eq!(rebuilt.arch(), original.arch());
        prop_assert_eq!(save_weights(&rebuilt), save_weights(&original));
    }

    /// MNW1: truncating the blob at any byte inside the payload fails
    /// loudly with a typed error — Truncated below the minimum size,
    /// BadMagic for cuts inside the magic, otherwise ChecksumMismatch
    /// (the cut clips the trailing CRC).
    #[test]
    fn mnw1_truncation_always_detected(
        cut_fraction in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let arch = arch_from(0, 2, 1);
        let original = perturbed_network(&arch, seed);
        let blob = save_weights(&original);
        let cut = ((blob.len() - 1) as f64 * cut_fraction) as usize;
        let mut net = Network::seeded(&arch, seed);
        let err = load_weights(&mut net, &blob[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                WeightsError::Truncated
                    | WeightsError::BadMagic
                    | WeightsError::ChecksumMismatch { .. }
            ),
            "cut at {} gave {:?}", cut, err
        );
    }

    /// MNW1: flipping any single bit in the payload is detected by the
    /// checksum — including flips inside f32 weight data, where the blob
    /// still parses structurally.
    #[test]
    fn mnw1_any_bit_flip_detected(
        byte_fraction in 0.0f64..1.0,
        bit in 0u8..8,
        seed in 0u64..1_000_000,
    ) {
        let arch = arch_from(0, 2, 1);
        let original = perturbed_network(&arch, seed);
        let mut blob = save_weights(&original);
        let at = ((blob.len() - 1) as f64 * byte_fraction) as usize;
        blob[at] ^= 1 << bit;
        let mut net = Network::seeded(&arch, seed);
        let err = load_weights(&mut net, &blob).unwrap_err();
        prop_assert!(
            matches!(
                err,
                WeightsError::ChecksumMismatch { .. } | WeightsError::BadMagic
            ),
            "flip at byte {} bit {} gave {:?}", at, bit, err
        );
    }

    /// MNE1: ensembles of randomized size and family round-trip with
    /// names, manifest, and weights intact.
    #[test]
    fn mne1_round_trip_is_bitwise(
        count in 1usize..4,
        family in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let members: Vec<EnsembleMember> = (0..count)
            .map(|i| {
                let arch = arch_from(family, i, 1);
                EnsembleMember::new(
                    format!("member-{i}"),
                    perturbed_network(&arch, seed.wrapping_add(i as u64)),
                )
            })
            .collect();
        let manifest = EnsembleManifest {
            combine: "vote".into(),
            strategy: "full-data".into(),
        };
        let bytes = artifact::save_ensemble(&members, &manifest);
        let (got_manifest, got_members) = artifact::load_ensemble(&bytes).unwrap();
        prop_assert_eq!(got_manifest, manifest);
        prop_assert_eq!(got_members.len(), members.len());
        for (a, b) in members.iter().zip(&got_members) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(save_weights(&a.network), save_weights(&b.network));
        }
    }

    /// MNE1: truncating the artifact at any byte fails loudly with a
    /// typed error, never a panic or a silently short ensemble.
    #[test]
    fn mne1_truncation_always_detected(
        cut_fraction in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let members = vec![EnsembleMember::new(
            "only",
            perturbed_network(&arch_from(0, 2, 1), seed),
        )];
        let bytes = artifact::save_ensemble(&members, &EnsembleManifest::default());
        let cut = ((bytes.len() - 1) as f64 * cut_fraction) as usize;
        let err = artifact::load_ensemble(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                ArtifactError::Truncated
                    | ArtifactError::BadMagic
                    | ArtifactError::ChecksumMismatch { .. }
                    | ArtifactError::Member { .. }
            ),
            "cut at {} gave {:?}", cut, err
        );
    }
}

#[test]
fn mnw1_explicit_error_cases() {
    let arch = Architecture::mlp("m", InputSpec::new(2, 8, 8), 4, vec![6]);
    let mut net = Network::seeded(&arch, 5);

    // BadMagic: right length, wrong magic.
    let mut blob = save_weights(&net);
    blob[0..4].copy_from_slice(b"NOPE");
    assert_eq!(load_weights(&mut net, &blob), Err(WeightsError::BadMagic));

    // Truncated: empty and short inputs.
    assert_eq!(load_weights(&mut net, b""), Err(WeightsError::Truncated));

    // ChecksumMismatch: a one-byte cut clips the trailing CRC.
    let blob = save_weights(&net);
    assert!(matches!(
        load_weights(&mut net, &blob[..blob.len() - 1]),
        Err(WeightsError::ChecksumMismatch { .. })
    ));

    // ChecksumMismatch: a bit flip inside an f32 weight — structurally
    // the blob still parses, only the checksum can catch it.
    let mut blob = save_weights(&net);
    let mid = blob.len() / 2;
    blob[mid] ^= 0x04;
    assert!(matches!(
        load_weights(&mut net, &blob),
        Err(WeightsError::ChecksumMismatch { .. })
    ));

    // TrailingBytes: count preserved in the error (checksum re-sealed so
    // the structural check is what fires).
    let mut blob = save_weights(&net);
    let crc_at = blob.len() - 4;
    blob.splice(crc_at..crc_at, [1, 2, 3]);
    reseal(&mut blob);
    assert_eq!(
        load_weights(&mut net, &blob),
        Err(WeightsError::TrailingBytes { count: 3 })
    );

    // ShapeMismatch: blob from a structurally different network.
    let other_arch = Architecture::mlp("o", InputSpec::new(2, 8, 8), 4, vec![7]);
    let other = Network::seeded(&other_arch, 6);
    let blob = save_weights(&other);
    assert!(matches!(
        load_weights(&mut net, &blob),
        Err(WeightsError::ShapeMismatch { .. })
    ));

    // ShapeMismatch: tensor-count field corrupted (and re-sealed).
    let mut blob = save_weights(&net);
    blob[4] = blob[4].wrapping_add(1);
    reseal(&mut blob);
    assert!(matches!(
        load_weights(&mut net, &blob),
        Err(WeightsError::ShapeMismatch { .. })
    ));
}

#[test]
fn mne1_explicit_error_cases() {
    let members = vec![EnsembleMember::new(
        "m",
        Network::seeded(
            &Architecture::mlp("m", InputSpec::new(2, 8, 8), 4, vec![6]),
            7,
        ),
    )];
    let bytes = artifact::save_ensemble(&members, &EnsembleManifest::default());

    // BadMagic.
    let mut bad = bytes.clone();
    bad[0..4].copy_from_slice(b"ELF\0");
    assert!(matches!(
        artifact::load_ensemble(&bad),
        Err(ArtifactError::BadMagic)
    ));

    // ChecksumMismatch: any in-place byte change without re-sealing the
    // trailing CRC reads as corruption — this is the integrity tentpole.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    assert!(matches!(
        artifact::load_ensemble(&flipped),
        Err(ArtifactError::ChecksumMismatch { .. })
    ));

    // EmptyEnsemble: member count forced to zero (re-sealed).
    let mut empty = bytes.clone();
    empty[4..8].copy_from_slice(&0u32.to_le_bytes());
    reseal(&mut empty);
    assert!(matches!(
        artifact::load_ensemble(&empty),
        Err(ArtifactError::EmptyEnsemble)
    ));

    // TrailingBytes: extra payload byte ahead of a re-sealed checksum.
    let mut trailing = bytes.clone();
    let crc_at = trailing.len() - 4;
    trailing.insert(crc_at, 0xFF);
    reseal(&mut trailing);
    assert!(matches!(
        artifact::load_ensemble(&trailing),
        Err(ArtifactError::TrailingBytes { count: 1 })
    ));

    // BadManifest: manifest JSON corrupted in place (re-sealed).
    let mut bad_manifest = bytes.clone();
    bad_manifest[12] = b'{';
    bad_manifest[13] = b'{';
    reseal(&mut bad_manifest);
    assert!(matches!(
        artifact::load_ensemble(&bad_manifest),
        Err(ArtifactError::BadManifest { .. })
    ));

    // BadName: a member name corrupted into invalid UTF-8 is rejected,
    // not silently mangled. The first name section starts right after
    // the manifest frame: magic(4) + count(4) + len(4) + manifest + len(4).
    let manifest_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let name_pos = 12 + manifest_len + 4;
    let mut bad_name = bytes.clone();
    bad_name[name_pos] = 0xFF;
    reseal(&mut bad_name);
    match artifact::load_ensemble(&bad_name) {
        Err(ArtifactError::BadName { index, .. }) => assert_eq!(index, 0),
        other => panic!("expected BadName error, got {other:?}"),
    }

    // Member: the member's inner weight blob magic destroyed — the error
    // names the member and carries the underlying WeightsError.
    let mut bad_member = bytes.clone();
    let inner_magic = bytes
        .windows(4)
        .rposition(|w| w == b"MNW1")
        .expect("member section contains a weight blob");
    bad_member[inner_magic..inner_magic + 4].copy_from_slice(b"XXXX");
    reseal(&mut bad_member);
    match artifact::load_ensemble(&bad_member) {
        Err(ArtifactError::Member { index, source }) => {
            assert_eq!(index, 0);
            assert_eq!(source, WeightsError::BadMagic);
        }
        other => panic!("expected Member error, got {other:?}"),
    }

    // Io: missing file.
    assert!(matches!(
        artifact::read_ensemble_file("/nonexistent/path/x.mne1"),
        Err(ArtifactError::Io { .. })
    ));
}

//! Determinism-under-parallelism for the **training** path: for a fixed
//! seed, training must produce **bitwise identical** weights (and running
//! batch-norm statistics) regardless of how many rayon worker threads
//! execute the kernels, and regardless of workspace reuse.
//!
//! This holds by construction — the GEMM core accumulates every output
//! element in a fixed order under any banding, the backward batch loops
//! split work over disjoint chunks whose boundaries never depend on the
//! thread count, and the fused SGD step uses a fixed chunk size — and
//! this suite pins it so a future kernel rewrite cannot silently trade it
//! away.
//!
//! Note: the vendored rayon's `ThreadPool::install` sets a process-global
//! thread-count override, so these tests serialize on a local lock.

use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec, ResBlockSpec};
use mn_nn::train::{train, train_with, TrainConfig};
use mn_nn::Network;
use mn_tensor::{Tensor, Workspace};
use rand::rngs::StdRng;
use rand::SeedableRng;

static THREAD_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// A linearly separable toy task (class = brightest channel).
fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Tensor::randn([n, 3, 8, 8], 0.3, &mut rng);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 3;
        labels.push(class);
        for h in 0..8 {
            for w in 0..8 {
                *x.at4_mut(i, class, h, w) += 1.0;
            }
        }
    }
    (x, labels)
}

/// Snapshot of every persistent state tensor (weights, biases, batch-norm
/// gamma/beta and running statistics), bit-exact.
fn state_bits(net: &mut Network) -> Vec<Vec<u32>> {
    net.nodes_mut()
        .iter_mut()
        .flat_map(|n| n.state_mut())
        .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn train_with_threads(threads: usize, arch: &Architecture) -> Vec<Vec<u32>> {
    let (x_train, y_train) = toy_data(48, 1);
    let (x_val, y_val) = toy_data(24, 2);
    let cfg = TrainConfig {
        max_epochs: 2,
        batch_size: 16,
        ..TrainConfig::default()
    };
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(|| {
            let mut net = Network::seeded(arch, 7);
            train(&mut net, &x_train, &y_train, &x_val, &y_val, &cfg);
            state_bits(&mut net)
        })
}

/// Architectures covering every kernel family the training step uses:
/// conv (GEMM and direct formulations), batch norm, max pool, residual
/// units with global average pooling, and dense layers.
fn arch_zoo() -> Vec<Architecture> {
    let input = InputSpec::new(3, 8, 8);
    vec![
        Architecture::plain(
            "conv",
            input,
            3,
            vec![ConvBlockSpec::repeated(3, 6, 2)],
            vec![16],
        ),
        Architecture::residual("res", input, 3, vec![ResBlockSpec::new(1, 4, 3)]),
        Architecture::mlp("mlp", input, 3, vec![12]),
    ]
}

#[test]
fn training_is_bitwise_identical_across_thread_counts() {
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    for arch in arch_zoo() {
        let one = train_with_threads(1, &arch);
        let four = train_with_threads(4, &arch);
        assert_eq!(
            one, four,
            "weights diverged across thread counts for {}",
            arch.name
        );
    }
}

#[test]
fn workspace_reuse_does_not_change_training() {
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    let arch = &arch_zoo()[0];
    let (x_train, y_train) = toy_data(48, 3);
    let (x_val, y_val) = toy_data(24, 4);
    let cfg = TrainConfig {
        max_epochs: 2,
        batch_size: 16,
        ..TrainConfig::default()
    };
    // Fresh workspace per run vs a dirty one retained across two runs.
    let mut fresh_net = Network::seeded(arch, 9);
    train(&mut fresh_net, &x_train, &y_train, &x_val, &y_val, &cfg);
    let fresh = state_bits(&mut fresh_net);

    let mut ws = Workspace::new();
    let mut warmup = Network::seeded(arch, 1);
    train_with(
        &mut warmup,
        &x_train,
        &y_train,
        &x_val,
        &y_val,
        &cfg,
        &mut ws,
    );
    let mut reused_net = Network::seeded(arch, 9);
    train_with(
        &mut reused_net,
        &x_train,
        &y_train,
        &x_val,
        &y_val,
        &cfg,
        &mut ws,
    );
    let reused = state_bits(&mut reused_net);
    assert_eq!(fresh, reused, "dirty workspace reuse changed training");
}

#[test]
fn repeated_runs_are_bitwise_identical() {
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    let arch = &arch_zoo()[1];
    let a = train_with_threads(2, arch);
    let b = train_with_threads(2, arch);
    assert_eq!(a, b, "same-seed training runs diverged");
}

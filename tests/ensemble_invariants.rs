//! Cross-crate invariants of ensemble inference and bagging, on real
//! (trained) networks rather than synthetic probability tables.

use mn_data::presets::{cifar10_sim, Scale};
use mn_data::sampler::{bag_seeded, train_val_split};
use mn_ensemble::{evaluate_predictions, EnsembleMember, MemberPredictions};
use mn_nn::arch::{Architecture, InputSpec};
use mn_nn::train::{train, TrainConfig};
use mn_nn::Network;
use proptest::prelude::*;

fn trained_members(n: usize, seed: u64) -> (Vec<EnsembleMember>, mn_data::SyntheticTask) {
    let task = cifar10_sim(Scale::Tiny, seed);
    let classes = task.train.num_classes();
    let input = InputSpec::new(3, 8, 8);
    let cfg = TrainConfig {
        max_epochs: 3,
        ..TrainConfig::default()
    };
    let members = (0..n)
        .map(|i| {
            let arch = Architecture::mlp(format!("m{i}"), input, classes, vec![16 + 4 * i]);
            let mut net = Network::seeded(&arch, seed + i as u64);
            let bagged = bag_seeded(&task.train, seed + 100 + i as u64);
            train(
                &mut net,
                bagged.images(),
                bagged.labels(),
                task.test.images(),
                task.test.labels(),
                &cfg,
            );
            EnsembleMember::new(arch.name.clone(), net)
        })
        .collect();
    (members, task)
}

#[test]
fn oracle_improves_monotonically_with_members() {
    let (mut members, task) = trained_members(5, 21);
    let preds = MemberPredictions::collect(&mut members, task.test.images(), 64);
    let labels = task.test.labels();
    let mut prev = f32::INFINITY;
    for k in 1..=5 {
        let err = mn_ensemble::combine::oracle_error(&preds.prefix(k), labels);
        assert!(
            err <= prev + 1e-6,
            "oracle error rose at k={k}: {prev} -> {err}"
        );
        prev = err;
    }
}

#[test]
fn super_learner_weights_form_a_distribution() {
    let (mut members, task) = trained_members(4, 22);
    let (_, val) = train_val_split(&task.train, 0.2, 1);
    let test_preds = MemberPredictions::collect(&mut members, task.test.images(), 64);
    let val_preds = MemberPredictions::collect(&mut members, val.images(), 64);
    let eval = evaluate_predictions(&test_preds, task.test.labels(), &val_preds, val.labels());
    let sum: f32 = eval.sl_weights.iter().sum();
    assert!((sum - 1.0).abs() < 1e-4);
    assert!(eval.sl_weights.iter().all(|&w| (0.0..=1.0).contains(&w)));
    assert_eq!(eval.member_errors.len(), 4);
}

#[test]
fn bootstrap_resample_has_expected_unique_fraction() {
    let task = cifar10_sim(Scale::Tiny, 23);
    // Count unique images by hashing rows.
    let bagged = bag_seeded(&task.train, 9);
    let (c, h, w) = bagged.geometry();
    let row = c * h * w;
    let mut seen = std::collections::HashSet::new();
    for i in 0..bagged.len() {
        let bytes: Vec<u32> = bagged.images().data()[i * row..(i + 1) * row]
            .iter()
            .map(|f| f.to_bits())
            .collect();
        seen.insert(bytes);
    }
    let fraction = seen.len() as f64 / bagged.len() as f64;
    // 1 - 1/e ≈ 0.632; tiny sets are noisy, accept a broad band.
    assert!(
        (0.5..0.75).contains(&fraction),
        "unique fraction {fraction} far from bootstrap expectation"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Adding a member never hurts the oracle and keeps every combiner's
    /// error a valid rate, for ensembles of varying size.
    #[test]
    fn combiners_stay_valid_for_any_prefix(n in 2usize..5, seed in 0u64..50) {
        let (mut members, task) = trained_members(n, 200 + seed);
        let (_, val) = train_val_split(&task.train, 0.2, seed);
        let test_preds = MemberPredictions::collect(&mut members, task.test.images(), 64);
        let val_preds = MemberPredictions::collect(&mut members, val.images(), 64);
        for k in 1..=n {
            let eval = evaluate_predictions(
                &test_preds.prefix(k),
                task.test.labels(),
                &val_preds.prefix(k),
                val.labels(),
            );
            for e in [eval.ea_error, eval.vote_error, eval.sl_error, eval.oracle_error] {
                prop_assert!((0.0..=1.0).contains(&e));
            }
            prop_assert!(eval.oracle_error <= eval.ea_error + 1e-6);
        }
    }
}

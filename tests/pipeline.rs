//! End-to-end pipeline integration: data → architectures → MotherNet →
//! training → hatching → ensemble inference, across crates.

use mn_data::presets::{cifar10_sim, Scale};
use mn_data::sampler::train_val_split;
use mn_ensemble::evaluate_members;
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec};
use mn_nn::train::TrainConfig;
use mothernets::prelude::*;

fn small_vgg_ensemble(classes: usize) -> Vec<Architecture> {
    let input = InputSpec::new(3, 8, 8);
    vec![
        Architecture::plain(
            "a",
            input,
            classes,
            vec![
                ConvBlockSpec::repeated(3, 4, 1),
                ConvBlockSpec::repeated(3, 8, 1),
            ],
            vec![32],
        ),
        Architecture::plain(
            "b",
            input,
            classes,
            vec![
                ConvBlockSpec::repeated(3, 6, 1),
                ConvBlockSpec::repeated(3, 8, 2),
            ],
            vec![32],
        ),
        Architecture::plain(
            "c",
            input,
            classes,
            vec![
                ConvBlockSpec::repeated(5, 4, 1),
                ConvBlockSpec::repeated(3, 12, 1),
            ],
            vec![48],
        ),
    ]
}

fn fast_cfg(seed: u64) -> EnsembleTrainConfig {
    EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 3,
            ..TrainConfig::default()
        },
        seed,
        parallel: true,
        ..Default::default()
    }
}

#[test]
fn all_three_strategies_produce_working_ensembles() {
    let task = cifar10_sim(Scale::Tiny, 1);
    let archs = small_vgg_ensemble(task.train.num_classes());
    let mut cfg = fast_cfg(2);
    cfg.train.max_epochs = 8;
    let (_, val) = train_val_split(&task.train, cfg.val_fraction, cfg.seed);

    for strategy in [
        Strategy::FullData,
        Strategy::Bagging,
        Strategy::mothernets(),
    ] {
        let mut trained =
            train_ensemble(&archs, &task.train, &strategy, &cfg).expect("train succeeds");
        assert_eq!(trained.members.len(), 3, "{strategy}: wrong member count");

        let eval = evaluate_members(
            &mut trained.members,
            task.test.images(),
            task.test.labels(),
            val.images(),
            val.labels(),
            64,
        );
        // Errors are valid rates and the oracle lower-bounds everything.
        for e in [
            eval.ea_error,
            eval.vote_error,
            eval.sl_error,
            eval.oracle_error,
        ] {
            assert!(
                (0.0..=1.0).contains(&e),
                "{strategy}: error {e} out of range"
            );
        }
        assert!(eval.oracle_error <= eval.ea_error + 1e-6);
        assert!(eval.oracle_error <= eval.vote_error + 1e-6);
        assert!(eval.oracle_error <= eval.sl_error + 1e-6);
        assert!(eval.oracle_error <= eval.member_errors.iter().cloned().fold(1.0, f32::min) + 1e-6);
        // Better than chance on a 10-class task (i.e. learned something).
        assert!(
            eval.ea_error < 0.85,
            "{strategy}: EA error at chance: {}",
            eval.ea_error
        );
    }
}

#[test]
fn mothernets_costs_include_mother_and_members() {
    let task = cifar10_sim(Scale::Tiny, 3);
    let archs = small_vgg_ensemble(task.train.num_classes());
    let cfg = fast_cfg(4);
    let trained =
        train_ensemble(&archs, &task.train, &Strategy::mothernets(), &cfg).expect("train succeeds");

    assert!(!trained.mother_records.is_empty());
    let mother_cost: f64 = trained.mother_records.iter().map(|r| r.cost_units).sum();
    assert!(mother_cost > 0.0);
    // Cumulative curves are monotone and bracket the total.
    let mut prev = trained.cumulative_wall_secs(0);
    assert!(prev > 0.0, "k=0 must include MotherNet cost");
    for k in 1..=trained.members.len() {
        let cur = trained.cumulative_wall_secs(k);
        assert!(cur >= prev);
        prev = cur;
    }
    assert!((prev - trained.total_wall_secs()).abs() < 1e-9);
}

#[test]
fn mothernet_members_inherit_trained_function_before_fine_tuning() {
    // With MemberTraining::None, every hatched member must agree with its
    // MotherNet's predictions (up to hatch noise = 0).
    let task = cifar10_sim(Scale::Tiny, 5);
    let archs = small_vgg_ensemble(task.train.num_classes());
    let strategy = Strategy::MotherNets(MotherNetsStrategy {
        hatch_noise: 0.0,
        member_training: MemberTraining::None,
        ..Default::default()
    });
    let cfg = fast_cfg(6);
    let mut trained = train_ensemble(&archs, &task.train, &strategy, &cfg).expect("train succeeds");

    let clustering = trained.clustering.clone().expect("clustered");
    let probe = task.test.images();
    for (i, member) in trained.members.iter_mut().enumerate() {
        let g = clustering.cluster_of(i);
        let mother_probs = {
            let (_, net) = &trained.mothernets[g];
            let mut net = net.clone();
            mn_nn::metrics::predict_proba_batched(&mut net, probe, 64)
        };
        let member_probs = member.predict_proba(probe, 64);
        mn_tensor::assert_close(
            member_probs.data(),
            mother_probs.data(),
            5e-4, // softmax of preserved logits
        );
    }
}

#[test]
fn mixed_family_ensembles_are_rejected() {
    let task = cifar10_sim(Scale::Tiny, 7);
    let classes = task.train.num_classes();
    let input = InputSpec::new(3, 8, 8);
    let archs = vec![
        Architecture::mlp("mlp", input, classes, vec![16]),
        Architecture::plain(
            "conv",
            input,
            classes,
            vec![ConvBlockSpec::repeated(3, 4, 1)],
            vec![16],
        ),
    ];
    let err = train_ensemble(&archs, &task.train, &Strategy::mothernets(), &fast_cfg(8));
    assert!(matches!(
        err,
        Err(MotherNetsError::IncompatibleMembers { .. })
    ));
    // But the baselines do not need a shared MotherNet.
    let ok = train_ensemble(&archs, &task.train, &Strategy::FullData, &fast_cfg(8));
    assert!(ok.is_ok());
}

#[test]
fn repeated_runs_are_bitwise_reproducible() {
    let task = cifar10_sim(Scale::Tiny, 9);
    let archs = small_vgg_ensemble(task.train.num_classes());
    let cfg = fast_cfg(10);
    let a = train_ensemble(&archs, &task.train, &Strategy::mothernets(), &cfg).unwrap();
    let b = train_ensemble(&archs, &task.train, &Strategy::mothernets(), &cfg).unwrap();
    for (ra, rb) in a.member_records.iter().zip(&b.member_records) {
        assert_eq!(ra.gradient_steps, rb.gradient_steps);
        assert_eq!(ra.final_val_error, rb.final_val_error);
    }
}

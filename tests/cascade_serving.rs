//! Uncertainty-gated cascade consistency: the cascade is an *early-exit*
//! strategy, not a different model. At threshold 0 nothing exits early
//! and the output must be **bitwise identical** to the flat and
//! trunk-shared plans — across member counts, trunk depths, batch
//! shapes, confidence metrics, and thread counts. At any threshold, every
//! escalated row must be bit-for-bit the full ensemble average and every
//! early-exit row bit-for-bit the gate member's answer: the cascade never
//! invents a third kind of output.
//!
//! Note: the vendored rayon's `ThreadPool::install` sets a process-global
//! thread-count override, so the thread-count test serializes on a local
//! lock shared with nothing else in this binary.

use mn_ensemble::engine::{calibrate, CascadePolicy, Confidence, EnginePlan, ExecPolicy, Plan};
use mn_ensemble::{combine, EnsembleMember};
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec, ResBlockSpec};
use mn_nn::Network;
use mn_tensor::{ops, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

static THREAD_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn input() -> InputSpec {
    InputSpec::new(3, 8, 8)
}

fn arch(family: u8) -> Architecture {
    match family % 3 {
        0 => Architecture::mlp("m", input(), 5, vec![12, 8]),
        1 => Architecture::plain(
            "p",
            input(),
            5,
            vec![ConvBlockSpec::repeated(3, 4, 2)],
            vec![8],
        ),
        _ => Architecture::residual("r", input(), 5, vec![ResBlockSpec::new(1, 4, 3)]),
    }
}

/// A synthetic hatch (same idiom as the trunk-sharing suite): clone
/// `base` and multiplicatively perturb every state tensor from node `cut`
/// onward with a member-specific seed, so members share exactly the
/// prefix before `cut`.
fn diverge_from(base: &Network, cut: usize, seed: u64) -> Network {
    let mut net = base.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    for node in net.nodes_mut().iter_mut().skip(cut) {
        for t in node.state_mut() {
            for v in t.data_mut() {
                *v *= 1.0 + rng.gen_range(-0.2..0.2f32);
            }
        }
    }
    net
}

fn members_at_cut(family: u8, cut_pick: usize, num_members: usize) -> Vec<EnsembleMember> {
    let arch = arch(family);
    let base = Network::seeded(&arch, 7);
    let cut = cut_pick % (base.nodes().len() + 1);
    (0..num_members)
        .map(|i| {
            let net = diverge_from(&base, cut, 100 + i as u64);
            EnsembleMember::new(format!("m{i}"), net)
        })
        .collect()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The consistency contract: at threshold 0 nothing exits early, so
    /// the cascade's final probabilities equal the flat plan's ensemble
    /// average bit for bit — whatever the member count (including 1),
    /// trunk depth, metric, or batch shape. The trunk-shared plan must
    /// agree too (it is itself pinned bitwise-identical to flat).
    #[test]
    fn threshold_zero_cascade_is_bitwise_identical_to_flat_and_trunk(
        family in 0u8..3,
        cut_pick in 0usize..64,
        num_members in 1usize..5,
        n in 1usize..14,
        batch_size in 1usize..6,
        margin in proptest::bool::ANY,
    ) {
        let plan = EnginePlan::new(members_at_cut(family, cut_pick, num_members), batch_size)
            .unwrap()
            .into_shared();
        let x = Tensor::randn([n, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(9));

        let mut flat = plan.session();
        flat.set_policy(ExecPolicy::MemberParallel);
        let reference = flat.predict_average(&x);

        let metric = if margin { Confidence::Margin } else { Confidence::MaxProb };
        let cp = CascadePolicy { metric, threshold: 0.0 };
        prop_assert_eq!(plan.resolve(n, ExecPolicy::Cascade(cp)), Plan::Cascade(cp));
        let mut casc = plan.session();
        casc.set_policy(ExecPolicy::Cascade(cp));
        // Run twice so the second pass hits warm, reused scratch.
        let _ = casc.predict_scored(&x);
        let scored = casc.predict_scored(&x);
        prop_assert!(scored.escalated.iter().all(|&e| e), "threshold 0 must escalate everything");
        prop_assert_eq!(bits(&reference), bits(&scored.probs), "cascade diverged from flat");

        let mut trunked = plan.session();
        trunked.set_policy(ExecPolicy::TrunkShared { shards: 2 });
        prop_assert_eq!(bits(&trunked.predict_average(&x)), bits(&scored.probs));
    }

    /// At *any* threshold the cascade's rows are never novel: an
    /// escalated row is bit-for-bit the full ensemble average for that
    /// example, an early-exit row is bit-for-bit the gate (member 0)
    /// row, the exit decision follows the strict `u < threshold` rule,
    /// and the reported uncertainty is the metric applied to the gate's
    /// own probabilities.
    #[test]
    fn every_cascade_row_is_either_gate_or_full_ensemble(
        family in 0u8..3,
        cut_pick in 0usize..64,
        num_members in 2usize..5,
        n in 1usize..12,
        threshold in 0.0f32..1.0,
        margin in proptest::bool::ANY,
    ) {
        let plan = EnginePlan::new(members_at_cut(family, cut_pick, num_members), 4)
            .unwrap()
            .into_shared();
        let x = Tensor::randn([n, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(10));
        let k = plan.num_classes();

        let mut flat = plan.session();
        flat.set_policy(ExecPolicy::MemberParallel);
        let member_preds = flat.predict(&x);
        let full = combine::ensemble_average(&member_preds);
        let gate = &member_preds.probs()[0];

        let metric = if margin { Confidence::Margin } else { Confidence::MaxProb };
        let mut casc = plan.session();
        casc.set_policy(ExecPolicy::Cascade(CascadePolicy { metric, threshold }));
        let scored = casc.predict_scored(&x);

        for i in 0..n {
            let row = &scored.probs.data()[i * k..(i + 1) * k];
            let want_u = metric.uncertainty(&gate.data()[i * k..(i + 1) * k]);
            prop_assert_eq!(scored.uncertainty[i].to_bits(), want_u.to_bits());
            let should_exit = want_u < threshold;
            prop_assert_eq!(!scored.escalated[i], should_exit, "exit rule broke at row {}", i);
            let want = if should_exit { gate } else { &full };
            let want_row = &want.data()[i * k..(i + 1) * k];
            prop_assert_eq!(
                row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want_row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "row {} is neither the gate nor the full ensemble", i
            );
        }
    }
}

/// A crafted ambiguous example provably reaches the full ensemble while a
/// crafted confident one provably does not: scaling an input toward zero
/// drives every softmax toward uniform (maximal uncertainty), scaling it
/// up saturates the gate (minimal uncertainty).
#[test]
fn ambiguous_examples_escalate_and_confident_ones_exit() {
    let members = members_at_cut(0, 64, 4); // fully shared trunk, diverged heads
    let plan = EnginePlan::new(members, 8).unwrap().into_shared();
    let k = plan.num_classes();

    let direction = Tensor::randn([1, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(11));
    let mut ambiguous = direction.clone();
    for v in ambiguous.data_mut() {
        *v *= 1e-4; // near-zero logits: softmax ~ uniform, uncertainty ~ 1 - 1/K
    }
    let mut confident = direction.clone();
    for v in confident.data_mut() {
        *v *= 30.0; // saturated logits: uncertainty ~ 0
    }
    let mut x = Tensor::zeros([2, 3, 8, 8]);
    let row = x.len() / 2;
    x.data_mut()[..row].copy_from_slice(ambiguous.data());
    x.data_mut()[row..].copy_from_slice(confident.data());

    let mut flat = plan.session();
    flat.set_policy(ExecPolicy::MemberParallel);
    let member_preds = flat.predict(&x);
    let full = combine::ensemble_average(&member_preds);
    let gate = &member_preds.probs()[0];

    // Sanity on the crafted geometry before trusting the cascade with it.
    let u_ambiguous = Confidence::MaxProb.uncertainty(&gate.data()[..k]);
    let u_confident = Confidence::MaxProb.uncertainty(&gate.data()[k..2 * k]);
    assert!(
        u_ambiguous > 0.5,
        "near-zero input failed to confuse the gate: u = {u_ambiguous}"
    );
    assert!(
        u_confident < 0.2,
        "saturated input failed to convince the gate: u = {u_confident}"
    );

    let mut casc = plan.session();
    casc.set_policy(ExecPolicy::Cascade(CascadePolicy::max_prob(0.35)));
    let scored = casc.predict_scored(&x);

    assert!(scored.escalated[0], "the ambiguous example must escalate");
    assert!(
        !scored.escalated[1],
        "the confident example must exit early"
    );
    assert_eq!(scored.num_escalated(), 1);
    assert_eq!(scored.early_exit_rate(), 0.5);
    // The escalated row carries the full ensemble's answer — provably
    // different bits from the gate alone here — and the exit row carries
    // exactly the gate's.
    assert_eq!(
        bits(&full)[..k],
        bits(&scored.probs)[..k],
        "escalated row must be the full ensemble average"
    );
    assert_ne!(
        bits(gate)[..k],
        bits(&scored.probs)[..k],
        "escalation must actually change the ambiguous row's bits"
    );
    assert_eq!(
        bits(gate)[k..2 * k],
        bits(&scored.probs)[k..2 * k],
        "exit row must be the gate's answer"
    );
}

/// Cascade output is bitwise identical across worker thread counts, like
/// every other plan (the vendored rayon install is process-global, hence
/// the lock).
#[test]
fn cascade_is_bitwise_identical_across_thread_counts() {
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    let x = Tensor::randn([11, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(12));
    let run = |threads: usize| -> (Vec<u32>, Vec<bool>) {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        pool.install(|| {
            let plan = EnginePlan::new(members_at_cut(1, 64, 4), 4)
                .unwrap()
                .into_shared();
            let mut s = plan.session();
            s.set_policy(ExecPolicy::Cascade(CascadePolicy::max_prob(0.5)));
            let _ = s.predict_scored(&x);
            let scored = s.predict_scored(&x);
            (bits(&scored.probs), scored.escalated)
        })
    };
    let (bits1, esc1) = run(1);
    let (bits4, esc4) = run(4);
    assert_eq!(esc1, esc4, "escalation decisions diverged across threads");
    assert_eq!(bits1, bits4, "cascade output diverged across threads");
}

/// Calibration round-trip: the threshold `calibrate` picks reproduces its
/// own reported exit rate when applied, and respects the agreement bar.
#[test]
fn calibration_round_trips_through_the_cascade() {
    let plan = EnginePlan::new(members_at_cut(0, 64, 4), 8)
        .unwrap()
        .into_shared();
    // A mixed batch: half ambiguous (scaled-down) examples, half
    // confident ones, so a real threshold exists between the two bands.
    let base = Tensor::randn([16, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(13));
    let mut x = base.clone();
    let row = x.len() / 16;
    for i in 0..8 {
        for v in &mut x.data_mut()[i * row..(i + 1) * row] {
            *v *= 1e-4;
        }
    }
    for i in 8..16 {
        for v in &mut x.data_mut()[i * row..(i + 1) * row] {
            *v *= 30.0;
        }
    }

    let mut s = plan.session();
    let cal = calibrate(&mut s, &x, Confidence::MaxProb, 0.9);
    assert!(
        cal.exit_rate > 0.0,
        "a half-confident batch must admit some early exit (threshold {})",
        cal.policy.threshold
    );
    assert!(
        cal.agreement >= 0.9,
        "agreement bar violated: {}",
        cal.agreement
    );

    s.set_policy(ExecPolicy::Cascade(cal.policy));
    let scored = s.predict_scored(&x);
    assert!(
        (scored.early_exit_rate() - cal.exit_rate).abs() < 1e-12,
        "applied exit rate {} != calibrated {}",
        scored.early_exit_rate(),
        cal.exit_rate
    );
    // Exits agree with the full ensemble at least as often as promised.
    let mut flat = plan.session();
    flat.set_policy(ExecPolicy::MemberParallel);
    let full_labels = ops::argmax_rows(&flat.predict_average(&x));
    let cascade_labels = scored.labels();
    let exits: Vec<usize> = (0..16).filter(|&i| !scored.escalated[i]).collect();
    let agree = exits
        .iter()
        .filter(|&&i| cascade_labels[i] == full_labels[i])
        .count();
    assert!(
        agree as f64 / exits.len().max(1) as f64 >= 0.9,
        "calibrated exits disagreed with the ensemble more than promised"
    );
}

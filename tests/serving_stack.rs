//! The serving stack end to end: train → save → load → serve must be
//! bitwise faithful at every hand-off, and the dynamic-batching server
//! must be an execution strategy — never a model change.

use std::time::Duration;

use mn_data::presets::{cifar10_sim, Scale};
use mn_ensemble::engine::{EngineError, ExecPolicy, InferenceEngine};
use mn_ensemble::serve::{BatchingConfig, ServeError, Server};
use mn_ensemble::{artifact, EnsembleManifest, EnsembleMember};
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec, ResBlockSpec};
use mn_nn::train::TrainConfig;
use mn_nn::Network;
use mn_tensor::Tensor;
use mothernets::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Conv + residual + MLP members, so every kernel family crosses the
/// artifact boundary.
fn mixed_members(master_seed: u64) -> Vec<EnsembleMember> {
    let input = InputSpec::new(3, 8, 8);
    let archs = vec![
        Architecture::plain(
            "conv",
            input,
            5,
            vec![ConvBlockSpec::repeated(3, 6, 1)],
            vec![12],
        ),
        Architecture::residual("res", input, 5, vec![ResBlockSpec::new(1, 4, 3)]),
        Architecture::mlp("mlp", input, 5, vec![16]),
    ];
    archs
        .into_iter()
        .enumerate()
        .map(|(i, arch)| {
            let name = arch.name.clone();
            EnsembleMember::new(name, Network::seeded(&arch, master_seed + i as u64))
        })
        .collect()
}

#[test]
fn save_load_serve_round_trip_is_bitwise_exact() {
    let mut warm = InferenceEngine::new(mixed_members(7), 4).unwrap();
    let bytes = warm.to_artifact_bytes(&EnsembleManifest::default());
    let mut cold = InferenceEngine::from_artifact_bytes(&bytes, 4).unwrap();
    assert_eq!(cold.num_members(), 3);
    assert_eq!(cold.member_names(), vec!["conv", "res", "mlp"]);

    let x = Tensor::randn([9, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(1));
    let a = warm.predict(&x);
    let b = cold.predict(&x);
    for (m, (pa, pb)) in a.probs().iter().zip(b.probs()).enumerate() {
        let bits_a: Vec<u32> = pa.data().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = pb.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "member {m} changed through the artifact");
    }
}

#[test]
fn trained_ensemble_saves_and_cold_starts() {
    let task = cifar10_sim(Scale::Tiny, 41);
    let input = InputSpec::new(3, 8, 8);
    let archs = vec![
        Architecture::mlp("small", input, 10, vec![12]),
        Architecture::mlp("large", input, 10, vec![16]),
    ];
    let cfg = EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 2,
            ..TrainConfig::default()
        },
        ..Default::default()
    };
    let trained = train_ensemble(&archs, &task.train, &Strategy::mothernets(), &cfg).unwrap();
    assert_eq!(trained.manifest().strategy, "MotherNets");
    assert_eq!(trained.manifest().combine, "average");

    let dir = std::env::temp_dir().join("mn-serving-stack-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trained.mne1");
    trained.save(&path).unwrap();

    // The manifest survives the file round trip.
    let (manifest, _) = artifact::read_ensemble_file(&path).unwrap();
    assert_eq!(manifest.strategy, "MotherNets");

    // Cold-started engine vs an engine over the in-memory members.
    let mut cold = InferenceEngine::load(&path, 8).unwrap();
    let mut warm = InferenceEngine::new(trained.members.clone(), 8).unwrap();
    let x = Tensor::randn([6, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(2));
    let a = warm.predict(&x);
    let b = cold.predict(&x);
    for (m, (pa, pb)) in a.probs().iter().zip(b.probs()).enumerate() {
        assert_eq!(
            pa.data(),
            pb.data(),
            "member {m}: disk cold start diverged from training output"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn server_answers_match_direct_engine_bitwise() {
    // Requests served one at a time through the micro-batcher must equal
    // the same examples predicted as one direct engine batch.
    let x = Tensor::randn([12, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(3));
    let mut direct = InferenceEngine::new(mixed_members(11), 4).unwrap();
    let expected = direct.predict_average(&x);
    let expected_labels = direct.predict_labels(&x);

    let server = Server::start(
        InferenceEngine::new(mixed_members(11), 4).unwrap(),
        BatchingConfig {
            max_batch: 5,
            max_wait: Duration::from_millis(1),
        },
    );
    let n = x.shape().dim(0);
    let row = x.len() / n;
    let k = expected.shape().dim(1);
    let pending: Vec<_> = (0..n)
        .map(|i| {
            let example = Tensor::from_vec([3, 8, 8], x.data()[i * row..(i + 1) * row].to_vec());
            server.submit(&example).unwrap()
        })
        .collect();
    for (i, p) in pending.into_iter().enumerate() {
        let got = p.wait().unwrap();
        let want = &expected.data()[i * k..(i + 1) * k];
        let bits_got: Vec<u32> = got.probs.iter().map(|v| v.to_bits()).collect();
        let bits_want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_got, bits_want, "request {i} diverged through batching");
        assert_eq!(got.label, expected_labels[i]);
        assert!(got.batch >= 1 && got.batch <= 5);
    }
    let stats = server.shutdown();
    assert_eq!(stats.requests, n as u64);
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let mut direct = InferenceEngine::new(mixed_members(13), 8).unwrap();
    let server = Server::start(
        InferenceEngine::new(mixed_members(13), 8).unwrap(),
        BatchingConfig::default(),
    );
    let answers: Vec<(Vec<f32>, Vec<f32>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|c| {
                let client = server.client();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + c);
                    let mut out = Vec::new();
                    for _ in 0..8 {
                        let x = Tensor::randn([3, 8, 8], 1.0, &mut rng);
                        let got = client.submit(&x).unwrap().wait().unwrap();
                        out.push((x.into_vec(), got.probs));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let stats = server.shutdown();
    assert_eq!(stats.requests, 32);
    // Every interleaved answer must equal the direct single-example path.
    for (example, probs) in answers {
        let x = Tensor::from_vec([1, 3, 8, 8], example);
        let want = direct.predict_average(&x);
        assert_eq!(
            probs,
            want.data(),
            "a concurrent request got a wrong answer"
        );
    }
}

#[test]
fn engine_rejects_bad_ensembles_with_typed_errors() {
    assert_eq!(
        InferenceEngine::new(Vec::new(), 8).unwrap_err(),
        EngineError::EmptyEnsemble
    );
    let input = InputSpec::new(3, 8, 8);
    let mismatched = vec![
        EnsembleMember::new(
            "five",
            Network::seeded(&Architecture::mlp("a", input, 5, vec![8]), 0),
        ),
        EnsembleMember::new(
            "ten",
            Network::seeded(&Architecture::mlp("b", input, 10, vec![8]), 1),
        ),
    ];
    assert!(matches!(
        InferenceEngine::new(mismatched, 8),
        Err(EngineError::MemberMismatch { .. })
    ));
}

#[test]
fn server_rejects_malformed_requests_and_survives() {
    let server = Server::start(
        InferenceEngine::new(mixed_members(17), 4).unwrap(),
        BatchingConfig::default(),
    );
    assert!(matches!(
        server.submit(&Tensor::zeros([3, 4, 4])),
        Err(ServeError::BadExample { .. })
    ));
    // A good request still goes through after the rejection.
    let good = server.submit(&Tensor::zeros([3, 8, 8])).unwrap();
    assert_eq!(good.wait().unwrap().probs.len(), 5);
    let stats = server.shutdown();
    assert_eq!(stats.requests, 1);
}

#[test]
fn data_parallel_engine_behind_server_stays_exact() {
    // Force the sharding axis under the server and compare to the
    // member-parallel direct path.
    let mut direct = InferenceEngine::new(mixed_members(19), 2).unwrap();
    direct.set_policy(ExecPolicy::MemberParallel);
    let x = Tensor::randn([6, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(5));
    let expected = direct.predict_average(&x);

    let mut sharded = InferenceEngine::new(mixed_members(19), 2).unwrap();
    sharded.set_policy(ExecPolicy::DataParallel { shards: 3 });
    let server = Server::start(
        sharded,
        BatchingConfig {
            max_batch: 6,
            max_wait: Duration::from_millis(20),
        },
    );
    let n = x.shape().dim(0);
    let row = x.len() / n;
    let k = expected.shape().dim(1);
    let pending: Vec<_> = (0..n)
        .map(|i| {
            let example = Tensor::from_vec([3, 8, 8], x.data()[i * row..(i + 1) * row].to_vec());
            server.submit(&example).unwrap()
        })
        .collect();
    for (i, p) in pending.into_iter().enumerate() {
        let got = p.wait().unwrap();
        assert_eq!(
            got.probs,
            &expected.data()[i * k..(i + 1) * k],
            "request {i}: sharded serving diverged"
        );
    }
    server.shutdown();
}

//! The serving stack end to end: train → save → load → serve must be
//! bitwise faithful at every hand-off, and the sharded dynamic-batching
//! server must be an execution strategy — never a model change.

use std::sync::Arc;
use std::time::Duration;

use mn_data::presets::{cifar10_sim, Scale};
use mn_ensemble::engine::{EngineError, EnginePlan, ExecPolicy, InferenceEngine};
use mn_ensemble::serve::{BatchingConfig, ServeError, Server};
use mn_ensemble::{artifact, EnsembleManifest, EnsembleMember};
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec, ResBlockSpec};
use mn_nn::train::TrainConfig;
use mn_nn::Network;
use mn_tensor::Tensor;
use mothernets::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Conv + residual + MLP members, so every kernel family crosses the
/// artifact boundary.
fn mixed_members(master_seed: u64) -> Vec<EnsembleMember> {
    let input = InputSpec::new(3, 8, 8);
    let archs = vec![
        Architecture::plain(
            "conv",
            input,
            5,
            vec![ConvBlockSpec::repeated(3, 6, 1)],
            vec![12],
        ),
        Architecture::residual("res", input, 5, vec![ResBlockSpec::new(1, 4, 3)]),
        Architecture::mlp("mlp", input, 5, vec![16]),
    ];
    archs
        .into_iter()
        .enumerate()
        .map(|(i, arch)| {
            let name = arch.name.clone();
            EnsembleMember::new(name, Network::seeded(&arch, master_seed + i as u64))
        })
        .collect()
}

#[test]
fn save_load_serve_round_trip_is_bitwise_exact() {
    let mut warm = InferenceEngine::new(mixed_members(7), 4).unwrap();
    let bytes = warm.to_artifact_bytes(&EnsembleManifest::default());
    let mut cold = InferenceEngine::from_artifact_bytes(&bytes, 4).unwrap();
    assert_eq!(cold.num_members(), 3);
    assert_eq!(
        cold.member_names().collect::<Vec<_>>(),
        vec!["conv", "res", "mlp"]
    );

    let x = Tensor::randn([9, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(1));
    let a = warm.predict(&x);
    let b = cold.predict(&x);
    for (m, (pa, pb)) in a.probs().iter().zip(b.probs()).enumerate() {
        let bits_a: Vec<u32> = pa.data().iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = pb.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "member {m} changed through the artifact");
    }
}

#[test]
fn trained_ensemble_saves_and_cold_starts() {
    let task = cifar10_sim(Scale::Tiny, 41);
    let input = InputSpec::new(3, 8, 8);
    let archs = vec![
        Architecture::mlp("small", input, 10, vec![12]),
        Architecture::mlp("large", input, 10, vec![16]),
    ];
    let cfg = EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 2,
            ..TrainConfig::default()
        },
        ..Default::default()
    };
    let trained = train_ensemble(&archs, &task.train, &Strategy::mothernets(), &cfg).unwrap();
    assert_eq!(trained.manifest().strategy, "MotherNets");
    assert_eq!(trained.manifest().combine, "average");

    let dir = std::env::temp_dir().join("mn-serving-stack-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trained.mne1");
    trained.save(&path).unwrap();

    // The manifest survives the file round trip.
    let (manifest, _) = artifact::read_ensemble_file(&path).unwrap();
    assert_eq!(manifest.strategy, "MotherNets");

    // Cold-started engine vs an engine over the in-memory members.
    let mut cold = InferenceEngine::load(&path, 8).unwrap();
    let mut warm = InferenceEngine::new(trained.members.clone(), 8).unwrap();
    let x = Tensor::randn([6, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(2));
    let a = warm.predict(&x);
    let b = cold.predict(&x);
    for (m, (pa, pb)) in a.probs().iter().zip(b.probs()).enumerate() {
        assert_eq!(
            pa.data(),
            pb.data(),
            "member {m}: disk cold start diverged from training output"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn server_answers_match_direct_engine_bitwise() {
    // Requests served one at a time through the micro-batcher must equal
    // the same examples predicted as one direct engine batch.
    let x = Tensor::randn([12, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(3));
    let mut direct = InferenceEngine::new(mixed_members(11), 4).unwrap();
    let expected = direct.predict_average(&x);
    let expected_labels = direct.predict_labels(&x);

    let server = Server::start(
        InferenceEngine::new(mixed_members(11), 4).unwrap(),
        BatchingConfig {
            max_batch: 5,
            max_wait: Duration::from_millis(1),
        },
    );
    let n = x.shape().dim(0);
    let row = x.len() / n;
    let k = expected.shape().dim(1);
    let pending: Vec<_> = (0..n)
        .map(|i| {
            let example = Tensor::from_vec([3, 8, 8], x.data()[i * row..(i + 1) * row].to_vec());
            server.submit(&example).unwrap()
        })
        .collect();
    for (i, p) in pending.into_iter().enumerate() {
        let got = p.wait().unwrap();
        let want = &expected.data()[i * k..(i + 1) * k];
        let bits_got: Vec<u32> = got.probs.iter().map(|v| v.to_bits()).collect();
        let bits_want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_got, bits_want, "request {i} diverged through batching");
        assert_eq!(got.label, expected_labels[i]);
        assert!(got.batch >= 1 && got.batch <= 5);
    }
    let report = server.shutdown();
    assert_eq!(report.aggregate.requests, n as u64);
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let mut direct = InferenceEngine::new(mixed_members(13), 8).unwrap();
    let server = Server::start(
        InferenceEngine::new(mixed_members(13), 8).unwrap(),
        BatchingConfig::default(),
    );
    let answers: Vec<(Vec<f32>, Vec<f32>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|c| {
                let client = server.client();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + c);
                    let mut out = Vec::new();
                    for _ in 0..8 {
                        let x = Tensor::randn([3, 8, 8], 1.0, &mut rng);
                        let got = client.submit(&x).unwrap().wait().unwrap();
                        out.push((x.into_vec(), got.probs));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let report = server.shutdown();
    assert_eq!(report.aggregate.requests, 32);
    // Every interleaved answer must equal the direct single-example path.
    for (example, probs) in answers {
        let x = Tensor::from_vec([1, 3, 8, 8], example);
        let want = direct.predict_average(&x);
        assert_eq!(
            probs,
            want.data(),
            "a concurrent request got a wrong answer"
        );
    }
}

#[test]
fn engine_rejects_bad_ensembles_with_typed_errors() {
    assert_eq!(
        InferenceEngine::new(Vec::new(), 8).unwrap_err(),
        EngineError::EmptyEnsemble
    );
    let input = InputSpec::new(3, 8, 8);
    let mismatched = vec![
        EnsembleMember::new(
            "five",
            Network::seeded(&Architecture::mlp("a", input, 5, vec![8]), 0),
        ),
        EnsembleMember::new(
            "ten",
            Network::seeded(&Architecture::mlp("b", input, 10, vec![8]), 1),
        ),
    ];
    assert!(matches!(
        InferenceEngine::new(mismatched, 8),
        Err(EngineError::MemberMismatch { .. })
    ));
}

#[test]
fn server_rejects_malformed_requests_and_survives() {
    let server = Server::start(
        InferenceEngine::new(mixed_members(17), 4).unwrap(),
        BatchingConfig::default(),
    );
    assert!(matches!(
        server.submit(&Tensor::zeros([3, 4, 4])),
        Err(ServeError::BadExample { .. })
    ));
    // A good request still goes through after the rejection.
    let good = server.submit(&Tensor::zeros([3, 8, 8])).unwrap();
    assert_eq!(good.wait().unwrap().probs.len(), 5);
    let report = server.shutdown();
    assert_eq!(report.aggregate.requests, 1);
}

#[test]
fn data_parallel_engine_behind_server_stays_exact() {
    // Force the sharding axis under the server and compare to the
    // member-parallel direct path.
    let mut direct = InferenceEngine::new(mixed_members(19), 2).unwrap();
    direct.set_policy(ExecPolicy::MemberParallel);
    let x = Tensor::randn([6, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(5));
    let expected = direct.predict_average(&x);

    let mut sharded = InferenceEngine::new(mixed_members(19), 2).unwrap();
    sharded.set_policy(ExecPolicy::DataParallel { shards: 3 });
    let server = Server::start(
        sharded,
        BatchingConfig {
            max_batch: 6,
            max_wait: Duration::from_millis(20),
        },
    );
    let n = x.shape().dim(0);
    let row = x.len() / n;
    let k = expected.shape().dim(1);
    let pending: Vec<_> = (0..n)
        .map(|i| {
            let example = Tensor::from_vec([3, 8, 8], x.data()[i * row..(i + 1) * row].to_vec());
            server.submit(&example).unwrap()
        })
        .collect();
    for (i, p) in pending.into_iter().enumerate() {
        let got = p.wait().unwrap();
        assert_eq!(
            got.probs,
            &expected.data()[i * k..(i + 1) * k],
            "request {i}: sharded serving diverged"
        );
    }
    server.shutdown();
}

#[test]
fn multi_shard_server_over_shared_plan_is_bitwise_exact() {
    // The plan/session acceptance criterion: N >= 2 worker shards over
    // ONE shared EnginePlan must produce bitwise-identical predictions
    // to the single-engine path, while sharing member weights (no
    // per-shard clones — pointer identity on the plan).
    let x = Tensor::randn([16, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(23));
    let mut direct = InferenceEngine::new(mixed_members(23), 4).unwrap();
    let expected = direct.predict_average(&x);
    let expected_labels = direct.predict_labels(&x);
    let k = expected.shape().dim(1);

    let plan = EnginePlan::new(mixed_members(23), 4).unwrap().into_shared();
    for shards in [2usize, 4] {
        let server = Server::builder(Arc::clone(&plan))
            .shards(shards)
            .batching(BatchingConfig {
                max_batch: 3,
                max_wait: Duration::from_millis(1),
            })
            .start();
        assert_eq!(server.num_shards(), shards);
        let n = x.shape().dim(0);
        let row = x.len() / n;
        let pending: Vec<_> = (0..n)
            .map(|i| {
                let example =
                    Tensor::from_vec([3, 8, 8], x.data()[i * row..(i + 1) * row].to_vec());
                server.submit(&example).unwrap()
            })
            .collect();
        let mut shards_seen = std::collections::HashSet::new();
        for (i, p) in pending.into_iter().enumerate() {
            let got = p.wait().unwrap();
            shards_seen.insert(got.shard);
            let bits_got: Vec<u32> = got.probs.iter().map(|v| v.to_bits()).collect();
            let bits_want: Vec<u32> = expected.data()[i * k..(i + 1) * k]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(
                bits_got, bits_want,
                "request {i} diverged on a {shards}-shard server"
            );
            assert_eq!(got.label, expected_labels[i]);
            assert!(got.shard < shards);
        }
        let report = server.shutdown();
        assert_eq!(report.aggregate.requests, n as u64);
        assert_eq!(report.per_shard.len(), shards);
        assert_eq!(
            report.per_shard.iter().map(|s| s.requests).sum::<u64>(),
            n as u64
        );
        // The aggregate is exactly the per-shard sums — including the
        // fault-handling counters, which a healthy run leaves at zero.
        assert_eq!(
            report.aggregate.deadline_expired,
            report
                .per_shard
                .iter()
                .map(|s| s.deadline_expired)
                .sum::<u64>()
        );
        assert_eq!(
            report.aggregate.degraded,
            report.per_shard.iter().map(|s| s.degraded).sum::<u64>()
        );
        assert_eq!(report.aggregate.deadline_expired, 0);
        assert_eq!(report.aggregate.degraded, 0);
        assert_eq!(
            report.worker_panics, 0,
            "healthy run must not record panics"
        );
        assert_eq!(report.restarts, 0, "healthy run must not record restarts");
    }
    // The servers consumed only sessions: the plan (and its weights) is
    // still uniquely reachable from here, never cloned per shard.
    assert_eq!(
        Arc::strong_count(&plan),
        1,
        "worker shards must not retain weight clones after shutdown"
    );
}

#[test]
fn overloaded_server_rejects_typed_and_recovers() {
    // Fill the bounded queue, assert typed rejection, then assert the
    // server keeps answering admitted work and accepts again.
    let plan = EnginePlan::new(mixed_members(29), 4).unwrap().into_shared();
    let server = Server::builder(plan)
        .shards(1)
        .queue_capacity(3)
        .batching(BatchingConfig {
            max_batch: 2,
            max_wait: Duration::ZERO,
        })
        .start();
    let x = Tensor::zeros([3, 8, 8]);
    let mut admitted = Vec::new();
    let mut rejection = None;
    for _ in 0..100_000 {
        match server.submit(&x) {
            Ok(p) => admitted.push(p),
            Err(ServeError::Overloaded { queue_depth }) => {
                rejection = Some(queue_depth);
                break;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert_eq!(
        rejection.expect("a capacity-3 queue must overflow under a submit flood"),
        3,
        "Overloaded reports the configured queue bound"
    );
    for p in admitted {
        p.wait().expect("admitted requests are still answered");
    }
    // Recovery: the same server accepts and serves again.
    let again = server.submit(&x).expect("server recovers after overload");
    assert_eq!(again.wait().unwrap().probs.len(), 5);
    let report = server.shutdown();
    assert!(report.rejected >= 1, "rejections are tallied in the report");
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let plan = EnginePlan::new(mixed_members(31), 4).unwrap().into_shared();
    let server = Server::builder(plan)
        .shards(2)
        .batching(BatchingConfig {
            max_batch: 64,
            // A window long enough that requests are still coalescing
            // when shutdown lands.
            max_wait: Duration::from_millis(250),
        })
        .start();
    let pending: Vec<_> = (0..10)
        .map(|_| server.submit(&Tensor::zeros([3, 8, 8])).unwrap())
        .collect();
    let report = server.shutdown();
    assert_eq!(
        report.aggregate.requests, 10,
        "shutdown must drain admitted requests, not drop them"
    );
    for (i, p) in pending.into_iter().enumerate() {
        p.wait()
            .unwrap_or_else(|e| panic!("request {i} dropped during graceful shutdown: {e}"));
    }
}

#[test]
fn trained_ensemble_hands_off_to_plan_without_disk() {
    // train -> EnginePlan -> sharded server, all in memory, bitwise
    // equal to the artifact path.
    let task = cifar10_sim(Scale::Tiny, 43);
    let input = InputSpec::new(3, 8, 8);
    let archs = vec![
        Architecture::mlp("small", input, 10, vec![12]),
        Architecture::mlp("large", input, 10, vec![16]),
    ];
    let cfg = EnsembleTrainConfig {
        train: TrainConfig {
            max_epochs: 2,
            ..TrainConfig::default()
        },
        ..Default::default()
    };
    let trained = train_ensemble(&archs, &task.train, &Strategy::mothernets(), &cfg).unwrap();
    let plan = trained.to_engine_plan(8).unwrap().into_shared();
    assert_eq!(plan.num_members(), 2);
    assert_eq!(
        plan.member_names().collect::<Vec<_>>(),
        vec!["small", "large"]
    );

    let x = Tensor::randn([5, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(6));
    let mut direct = plan.session();
    let expected = direct.predict_average(&x);

    let bytes = trained.to_artifact_bytes();
    let mut from_artifact = InferenceEngine::from_artifact_bytes(&bytes, 8).unwrap();
    assert_eq!(
        from_artifact.predict_average(&x).data(),
        expected.data(),
        "in-memory plan hand-off diverged from the artifact path"
    );
}

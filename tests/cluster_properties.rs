//! Property-based tests of MotherNet construction and τ-clustering
//! (Algorithm 1) over randomly generated ensembles.

use mn_nn::arch::{Architecture, ConvBlockSpec, ConvLayerSpec, InputSpec};
use mothernets::cluster::{cluster_architectures, min_clusters_exhaustive, satisfies_condition};
use mothernets::construct::mothernet_of;
use proptest::prelude::*;

fn input() -> InputSpec {
    InputSpec::new(3, 8, 8)
}

/// Random MLP ensembles: 2–8 members, widths 4–200.
fn mlp_ensembles() -> impl Strategy<Value = Vec<Architecture>> {
    proptest::collection::vec(4usize..200, 2..8).prop_map(|widths| {
        widths
            .into_iter()
            .enumerate()
            .map(|(i, w)| Architecture::mlp(format!("n{i}"), input(), 10, vec![w]))
            .collect()
    })
}

/// Random two-block plain conv ensembles with non-narrowing blocks.
fn plain_ensembles() -> impl Strategy<Value = Vec<Architecture>> {
    proptest::collection::vec((1usize..4, 2usize..10, 2usize..12), 2..6).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (depth, f1, f2))| {
                Architecture::plain(
                    format!("n{i}"),
                    input(),
                    10,
                    vec![
                        ConvBlockSpec::new(vec![ConvLayerSpec::new(3, f1); depth]),
                        ConvBlockSpec::new(vec![ConvLayerSpec::new(3, f1 + f2); depth]),
                    ],
                    vec![16],
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The MotherNet is never larger than the smallest member and every
    /// member is reachable from it.
    #[test]
    fn mothernet_is_lower_bound_and_reachable(ens in mlp_ensembles()) {
        let mother = mothernet_of(&ens, "m").expect("same-depth MLPs always compose");
        let min = ens.iter().map(|a| a.param_count()).min().expect("non-empty");
        prop_assert!(mother.param_count() <= min);
        for member in &ens {
            prop_assert!(mn_morph::check_compatible(&mother, member).is_ok());
        }
    }

    /// Clustering covers every member exactly once and each cluster
    /// satisfies the τ condition with its own MotherNet.
    #[test]
    fn clustering_is_a_valid_partition(ens in mlp_ensembles(), tau in 0.05f64..1.0) {
        let clustering = cluster_architectures(&ens, tau).expect("clusterable");
        let mut seen = vec![0usize; ens.len()];
        for cluster in &clustering.clusters {
            for &i in &cluster.member_indices {
                seen[i] += 1;
                prop_assert!(satisfies_condition(&ens[i], &cluster.mothernet, tau));
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "not a partition: {seen:?}");
    }

    /// The greedy sorted sweep produces the minimum number of clusters
    /// (checked against the exhaustive DP oracle).
    #[test]
    fn greedy_clustering_is_minimal(ens in mlp_ensembles(), tau in 0.1f64..1.0) {
        let greedy = cluster_architectures(&ens, tau).expect("clusterable").len();
        let oracle = min_clusters_exhaustive(&ens, tau).expect("clusterable");
        prop_assert_eq!(greedy, oracle);
    }

    /// Clusters are monotone in τ: a stricter τ never yields fewer
    /// clusters.
    #[test]
    fn cluster_count_is_monotone_in_tau(ens in mlp_ensembles()) {
        let loose = cluster_architectures(&ens, 0.3).expect("clusterable").len();
        let strict = cluster_architectures(&ens, 0.8).expect("clusterable").len();
        prop_assert!(strict >= loose, "strict {strict} < loose {loose}");
    }

    /// Plain conv ensembles: MotherNet construction and clustering hold
    /// the same invariants as MLPs.
    #[test]
    fn plain_conv_clustering_is_valid(ens in plain_ensembles(), tau in 0.2f64..0.9) {
        let clustering = cluster_architectures(&ens, tau).expect("clusterable");
        let mut covered = 0usize;
        for cluster in &clustering.clusters {
            covered += cluster.member_indices.len();
            for &i in &cluster.member_indices {
                prop_assert!(mn_morph::check_compatible(&cluster.mothernet, &ens[i]).is_ok());
                prop_assert!(satisfies_condition(&ens[i], &cluster.mothernet, tau));
            }
        }
        prop_assert_eq!(covered, ens.len());
    }
}

//! Determinism-under-parallelism: the planned ensemble inference engine
//! must produce **bitwise identical** output regardless of how many rayon
//! worker threads execute it, which execution plan (member-parallel,
//! data-parallel sharding, trunk-shared, or auto) it picks, and across
//! repeated runs from the same seeds.
//!
//! This holds by construction — members fan out over disjoint result
//! slots, batch shards cover disjoint example ranges, and every tensor
//! kernel splits work over disjoint output regions with a fixed
//! per-element accumulation order — and this suite pins it so a future
//! kernel or executor rewrite cannot silently trade it away.
//!
//! Note: the vendored rayon's `ThreadPool::install` sets a process-global
//! thread-count override, so these tests serialize on a local lock.

use mn_ensemble::engine::{EnginePlan, ExecPolicy, InferenceEngine};
use mn_ensemble::EnsembleMember;
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec, ResBlockSpec};
use mn_nn::Network;
use mn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

static THREAD_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// A small but representative ensemble: conv, residual, and MLP members,
/// so the determinism check exercises every kernel family.
fn build_members(master_seed: u64) -> Vec<EnsembleMember> {
    let input = InputSpec::new(3, 8, 8);
    let archs = vec![
        Architecture::plain(
            "conv",
            input,
            5,
            vec![ConvBlockSpec::repeated(3, 6, 1)],
            vec![12],
        ),
        Architecture::plain(
            "conv5",
            input,
            5,
            vec![ConvBlockSpec::repeated(5, 4, 1)],
            vec![8],
        ),
        Architecture::residual("res", input, 5, vec![ResBlockSpec::new(1, 4, 3)]),
        Architecture::mlp("mlp", input, 5, vec![16]),
    ];
    archs
        .into_iter()
        .enumerate()
        .map(|(i, arch)| {
            let name = arch.name.clone();
            EnsembleMember::new(name, Network::seeded(&arch, master_seed + i as u64))
        })
        .collect()
}

fn predict_with_threads_and_policy(
    threads: usize,
    master_seed: u64,
    x: &Tensor,
    policy: ExecPolicy,
) -> Vec<Vec<f32>> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds");
    pool.install(|| {
        let mut engine =
            InferenceEngine::new(build_members(master_seed), 4).expect("members build");
        engine.set_policy(policy);
        // Two rounds so the second runs against warm (reused) workspaces.
        let _ = engine.predict(x);
        engine
            .predict(x)
            .probs()
            .iter()
            .map(|p| p.data().to_vec())
            .collect()
    })
}

fn predict_with_threads(threads: usize, master_seed: u64, x: &Tensor) -> Vec<Vec<f32>> {
    predict_with_threads_and_policy(threads, master_seed, x, ExecPolicy::Auto)
}

#[test]
fn engine_output_is_bitwise_identical_across_thread_counts() {
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    let x = Tensor::randn([11, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(42));
    let single = predict_with_threads(1, 7, &x);
    let multi = predict_with_threads(4, 7, &x);
    assert_eq!(single.len(), multi.len());
    for (m, (a, b)) in single.iter().zip(&multi).enumerate() {
        let bits_a: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits_a, bits_b,
            "member {m} diverged between 1 and 4 threads"
        );
    }
}

#[test]
fn engine_output_is_bitwise_identical_across_runs_with_same_seed() {
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    let x = Tensor::randn([9, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(43));
    let first = predict_with_threads(2, 11, &x);
    let second = predict_with_threads(2, 11, &x);
    for (m, (a, b)) in first.iter().zip(&second).enumerate() {
        let bits_a: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits_a, bits_b,
            "member {m} diverged between two seeded runs"
        );
    }
}

#[test]
fn engine_output_is_bitwise_identical_across_execution_plans() {
    // Member-parallel, every data-parallel shard count, and auto must
    // agree bit for bit — under both a single- and a multi-thread pool.
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    let x = Tensor::randn([17, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(45));
    let reference = predict_with_threads_and_policy(1, 5, &x, ExecPolicy::MemberParallel);
    let mut policies = vec![ExecPolicy::Auto, ExecPolicy::MemberParallel];
    policies.extend([2usize, 3, 4, 8, 17].map(|shards| ExecPolicy::DataParallel { shards }));
    // Mixed-architecture members share no trunk; the trunk-shared plan
    // must still agree bit for bit (it just shares nothing).
    policies.extend([1usize, 3, 17].map(|shards| ExecPolicy::TrunkShared { shards }));
    for threads in [1usize, 4] {
        for &policy in &policies {
            let got = predict_with_threads_and_policy(threads, 5, &x, policy);
            for (m, (a, b)) in reference.iter().zip(&got).enumerate() {
                let bits_a: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                let bits_b: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    bits_a, bits_b,
                    "member {m} diverged under {policy:?} on {threads} thread(s)"
                );
            }
        }
    }
}

/// Members cloned from one seed network with only the classifier head
/// perturbed — the hatched-ensemble shape with a deep shared conv trunk.
fn build_trunked_members(master_seed: u64) -> Vec<EnsembleMember> {
    let input = InputSpec::new(3, 8, 8);
    let arch = Architecture::plain(
        "trunked",
        input,
        5,
        vec![ConvBlockSpec::repeated(3, 6, 2)],
        vec![12],
    );
    let base = Network::seeded(&arch, master_seed);
    (0..4)
        .map(|s| {
            let mut net = base.clone();
            match net.nodes_mut().last_mut() {
                Some(mn_nn::LayerNode::Dense(l)) => {
                    for w in l.weight.value.data_mut() {
                        *w += (s as f32 + 1.0) * 0.01;
                    }
                }
                other => panic!("expected a dense head, got {other:?}"),
            }
            EnsembleMember::new(format!("t{s}"), net)
        })
        .collect()
}

#[test]
fn trunk_sharing_is_bitwise_identical_across_threads_and_shards() {
    // The tentpole's determinism criterion: trunk-shared output equals
    // the flat reference across ExecPolicy × shard count × thread count,
    // on an ensemble that genuinely shares a deep trunk (Auto picks the
    // trunk plan here).
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    let x = Tensor::randn([13, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(47));
    let run = |threads: usize, policy: ExecPolicy| -> Vec<Vec<u32>> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        pool.install(|| {
            let plan = EnginePlan::new(build_trunked_members(19), 4)
                .expect("members build")
                .into_shared();
            let mut session = plan.session();
            session.set_policy(policy);
            let _ = session.predict(&x); // warm lanes
            session
                .predict(&x)
                .probs()
                .iter()
                .map(|p| p.data().iter().map(|v| v.to_bits()).collect())
                .collect()
        })
    };
    let reference = run(1, ExecPolicy::MemberParallel);
    let mut policies = vec![ExecPolicy::Auto, ExecPolicy::MemberParallel];
    policies.extend([1usize, 2, 5, 13].map(|shards| ExecPolicy::TrunkShared { shards }));
    policies.push(ExecPolicy::DataParallel { shards: 3 });
    for threads in [1usize, 4] {
        for &policy in &policies {
            let got = run(threads, policy);
            assert_eq!(
                reference, got,
                "trunked ensemble diverged under {policy:?} on {threads} thread(s)"
            );
        }
    }
}

#[test]
fn concurrent_sessions_over_one_plan_are_bitwise_identical() {
    // Many sessions executing ONE shared plan from separate OS threads —
    // under different per-session policies — must all produce the bits
    // the single-owner engine produces. This is the determinism contract
    // of the plan/session split (weights shared, scratch private).
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    let x = Tensor::randn([14, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(46));
    let mut reference_engine = InferenceEngine::new(build_members(13), 4).expect("members build");
    let reference: Vec<Vec<u32>> = reference_engine
        .predict(&x)
        .probs()
        .iter()
        .map(|p| p.data().iter().map(|v| v.to_bits()).collect())
        .collect();

    let plan = EnginePlan::new(build_members(13), 4)
        .expect("members build")
        .into_shared();
    let policies = [
        ExecPolicy::Auto,
        ExecPolicy::MemberParallel,
        ExecPolicy::DataParallel { shards: 3 },
        ExecPolicy::DataParallel { shards: 7 },
        ExecPolicy::TrunkShared { shards: 2 },
    ];
    let results: Vec<Vec<Vec<u32>>> = std::thread::scope(|scope| {
        policies
            .iter()
            .map(|&policy| {
                let plan = std::sync::Arc::clone(&plan);
                let x = &x;
                scope.spawn(move || {
                    let mut session = plan.session();
                    session.set_policy(policy);
                    let _ = session.predict(x); // warm lanes
                    session
                        .predict(x)
                        .probs()
                        .iter()
                        .map(|p| p.data().iter().map(|v| v.to_bits()).collect())
                        .collect()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("session thread exits cleanly"))
            .collect()
    });
    for (policy, got) in policies.iter().zip(&results) {
        assert_eq!(
            &reference, got,
            "a concurrent session diverged under {policy:?}"
        );
    }
}

#[test]
fn engine_agrees_with_plain_member_prediction() {
    // The engine is an execution strategy, not a different model: its
    // per-member probabilities must equal each member predicting alone.
    let _guard = THREAD_OVERRIDE_LOCK.lock().unwrap();
    let x = Tensor::randn([6, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(44));
    let mut engine = InferenceEngine::new(build_members(3), 4).expect("members build");
    let fanned = engine.predict(&x);
    let mut solo_members = build_members(3);
    for (m, solo) in solo_members.iter_mut().enumerate() {
        let solo_probs = solo.predict_proba(&x, 4);
        assert_eq!(
            fanned.probs()[m].data(),
            solo_probs.data(),
            "member {m} diverged from solo prediction"
        );
    }
}

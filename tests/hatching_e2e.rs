//! Hatching from *trained* MotherNets, across families — the property the
//! whole pipeline rests on: a hatched member starts exactly where the
//! MotherNet left off.

use mn_data::presets::{cifar10_sim, svhn_sim, Scale};
use mn_morph::{morph_to, morph_to_with, MorphOptions, MorphPlan};
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec, ResBlockSpec};
use mn_nn::metrics::evaluate;
use mn_nn::train::{train, TrainConfig};
use mn_nn::{Mode, Network};
use mn_tensor::{max_abs_diff, PRESERVATION_TOLERANCE};
use mothernets::construct::mothernet_of;

fn train_briefly(net: &mut Network, task: &mn_data::SyntheticTask, epochs: usize) {
    let cfg = TrainConfig {
        max_epochs: epochs,
        ..TrainConfig::default()
    };
    train(
        net,
        task.train.images(),
        task.train.labels(),
        task.test.images(),
        task.test.labels(),
        &cfg,
    );
}

#[test]
fn trained_plain_mothernet_transfers_its_accuracy() {
    let task = cifar10_sim(Scale::Tiny, 11);
    let classes = task.train.num_classes();
    let input = InputSpec::new(3, 8, 8);
    let members = vec![
        Architecture::plain(
            "m1",
            input,
            classes,
            vec![
                ConvBlockSpec::repeated(3, 8, 2),
                ConvBlockSpec::repeated(3, 16, 2),
            ],
            vec![48],
        ),
        Architecture::plain(
            "m2",
            input,
            classes,
            vec![
                ConvBlockSpec::repeated(5, 6, 1),
                ConvBlockSpec::repeated(3, 24, 1),
            ],
            vec![64],
        ),
    ];
    let mother_arch = mothernet_of(&members, "mother").expect("compatible");
    let mut mother = Network::seeded(&mother_arch, 12);
    train_briefly(&mut mother, &task, 4);
    let mother_eval = evaluate(&mut mother, task.test.images(), task.test.labels(), 64);

    for member in &members {
        let mut hatched = morph_to(&mother, member).expect("hatchable");
        // Same test-set accuracy before any fine-tuning.
        let hatched_eval = evaluate(&mut hatched, task.test.images(), task.test.labels(), 64);
        assert!(
            (hatched_eval.error - mother_eval.error).abs() < 1e-6,
            "{}: hatched error {} != mother error {}",
            member.name,
            hatched_eval.error,
            mother_eval.error
        );
        // And bit-close logits.
        let x = task.test.images();
        let idx: Vec<usize> = (0..8).collect();
        let probe = mn_nn::metrics::gather_examples(x, &idx);
        let a = mother.forward(&probe, Mode::Eval);
        let b = hatched.forward(&probe, Mode::Eval);
        assert!(max_abs_diff(a.data(), b.data()) <= PRESERVATION_TOLERANCE);
    }
}

#[test]
fn trained_residual_mothernet_transfers_its_accuracy() {
    let task = svhn_sim(Scale::Tiny, 13);
    let classes = task.train.num_classes();
    let input = InputSpec::new(3, 8, 8);
    let members = vec![
        Architecture::residual(
            "r1",
            input,
            classes,
            vec![ResBlockSpec::new(2, 8, 3), ResBlockSpec::new(2, 16, 3)],
        ),
        Architecture::residual(
            "r2",
            input,
            classes,
            vec![ResBlockSpec::new(3, 12, 3), ResBlockSpec::new(2, 24, 3)],
        ),
    ];
    let mother_arch = mothernet_of(&members, "mother").expect("compatible");
    let mut mother = Network::seeded(&mother_arch, 14);
    train_briefly(&mut mother, &task, 3);
    let mother_eval = evaluate(&mut mother, task.test.images(), task.test.labels(), 64);

    for member in &members {
        let mut hatched = morph_to(&mother, member).expect("hatchable");
        let hatched_eval = evaluate(&mut hatched, task.test.images(), task.test.labels(), 64);
        assert!(
            (hatched_eval.error - mother_eval.error).abs() < 1e-6,
            "{}: hatched error {} != mother error {}",
            member.name,
            hatched_eval.error,
            mother_eval.error
        );
    }
}

#[test]
fn fine_tuning_a_hatched_member_does_not_regress_much() {
    // The hatched member starts from the MotherNet's function; a couple of
    // fine-tuning epochs must not be worse than random and typically
    // improves.
    let task = cifar10_sim(Scale::Tiny, 15);
    let classes = task.train.num_classes();
    let input = InputSpec::new(3, 8, 8);
    let small = Architecture::plain(
        "mother",
        input,
        classes,
        vec![
            ConvBlockSpec::repeated(3, 6, 1),
            ConvBlockSpec::repeated(3, 12, 1),
        ],
        vec![32],
    );
    let big = Architecture::plain(
        "member",
        input,
        classes,
        vec![
            ConvBlockSpec::repeated(3, 10, 2),
            ConvBlockSpec::repeated(3, 16, 2),
        ],
        vec![48],
    );
    let mut mother = Network::seeded(&small, 16);
    train_briefly(&mut mother, &task, 5);
    let before = evaluate(&mut mother, task.test.images(), task.test.labels(), 64);

    let mut hatched =
        morph_to_with(&mother, &big, &MorphOptions::with_noise(5e-3, 17)).expect("hatchable");
    let cfg = TrainConfig {
        max_epochs: 3,
        lr: 0.015,
        ..TrainConfig::default()
    };
    train(
        &mut hatched,
        task.train.images(),
        task.train.labels(),
        task.test.images(),
        task.test.labels(),
        &cfg,
    );
    let after = evaluate(&mut hatched, task.test.images(), task.test.labels(), 64);
    assert!(
        after.error <= before.error + 0.10,
        "fine-tuned hatched member regressed: {} -> {}",
        before.error,
        after.error
    );
}

#[test]
fn morph_plan_inherited_fraction_matches_cluster_condition() {
    // tau = 0.5 clustering guarantees that every member inherits at least
    // half its parameters; MorphPlan must agree.
    let ens = vec![
        Architecture::mlp("a", InputSpec::new(3, 8, 8), 10, vec![64]),
        Architecture::mlp("b", InputSpec::new(3, 8, 8), 10, vec![80]),
        Architecture::mlp("c", InputSpec::new(3, 8, 8), 10, vec![100]),
    ];
    let clustering = mothernets::cluster_architectures(&ens, 0.5).expect("clusterable");
    for cluster in &clustering.clusters {
        for &i in &cluster.member_indices {
            let plan = MorphPlan::between(&cluster.mothernet, &ens[i]).expect("compatible");
            assert!(
                plan.inherited_fraction >= 0.5,
                "member {} inherits only {:.1}%",
                ens[i].name,
                plan.inherited_fraction * 100.0
            );
        }
    }
}
